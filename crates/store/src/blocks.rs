//! Block encoders: fixed-width column payloads and the dictionary block.
//!
//! Everything is little-endian raw words. Encoding is a cast + copy;
//! decoding on the read side is a typed reinterpretation of the mapped
//! bytes (see [`crate::reader::BlockView`]) — the functions here exist so
//! the writer, the reader's validators, and the property tests all agree
//! on one byte layout.

use tabula_storage::{Column, Dictionary};

use crate::{Result, StoreError};

/// Encode a `&[u32]` as little-endian bytes.
pub fn encode_u32s(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode a `&[u64]` as little-endian bytes.
pub fn encode_u64s(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode a `&[i64]` as little-endian bytes.
pub fn encode_i64s(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode a `&[f64]` as little-endian **bit patterns** — NaN payloads and
/// signed zeros survive the round trip untouched.
pub fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// The encoded payload(s) of one [`Column`]. `Str` columns produce two
/// blocks (codes + dictionary); every other type produces one.
#[derive(Debug)]
pub enum ColumnBlocks {
    /// Raw i64 words.
    Int64(Vec<u8>),
    /// Raw f64 bit patterns.
    Float64(Vec<u8>),
    /// Dictionary codes plus the dictionary block itself.
    Str {
        /// Raw u32 codes, one per row.
        codes: Vec<u8>,
        /// Dictionary block (see [`encode_dict`]).
        dict: Vec<u8>,
    },
    /// Interleaved `x, y` f64 bit patterns, two words per point.
    Point(Vec<u8>),
}

/// Encode a column into its block payload(s).
pub fn encode_column(col: &Column) -> ColumnBlocks {
    match col {
        Column::Int64(v) => ColumnBlocks::Int64(encode_i64s(v)),
        Column::Float64(v) => ColumnBlocks::Float64(encode_f64s(v)),
        Column::Str { codes, dict } => {
            ColumnBlocks::Str { codes: encode_u32s(codes), dict: encode_dict(dict) }
        }
        Column::Point(pts) => {
            let mut out = Vec::with_capacity(pts.len() * 16);
            for p in pts.iter() {
                out.extend_from_slice(&p.x.to_bits().to_le_bytes());
                out.extend_from_slice(&p.y.to_bits().to_le_bytes());
            }
            ColumnBlocks::Point(out)
        }
    }
}

/// Encode a dictionary: `[count: u64][offsets: (count+1) × u64][utf8]`.
///
/// Offsets are cumulative byte positions into the trailing UTF-8 heap;
/// entry `i` is `bytes[offsets[i]..offsets[i+1]]`. Entries appear in code
/// order, so re-encoding them in sequence on load reproduces the exact
/// same code assignment (codes are dense and first-seen ordered).
pub fn encode_dict(dict: &Dictionary) -> Vec<u8> {
    let count = dict.len();
    let mut offsets = Vec::with_capacity(count + 1);
    let mut heap = Vec::new();
    offsets.push(0u64);
    for code in 0..count as u32 {
        heap.extend_from_slice(dict.decode(code).as_bytes());
        offsets.push(heap.len() as u64);
    }
    let mut out = Vec::with_capacity(8 + offsets.len() * 8 + heap.len());
    out.extend_from_slice(&(count as u64).to_le_bytes());
    for off in &offsets {
        out.extend_from_slice(&off.to_le_bytes());
    }
    out.extend_from_slice(&heap);
    out
}

/// Decode a dictionary block into its strings, in code order. Every
/// structural fault (short header, non-monotonic offsets, heap overrun,
/// invalid UTF-8) is a typed [`StoreError::BadBlock`].
pub fn decode_dict_strings(region: &str, bytes: &[u8]) -> Result<Vec<String>> {
    let bad = |reason: String| StoreError::BadBlock { region: region.to_string(), reason };
    let read_u64 = |at: usize| -> Result<u64> {
        let end = at.checked_add(8).filter(|&e| e <= bytes.len());
        let end = end.ok_or_else(|| bad(format!("u64 at byte {at} overruns block")))?;
        Ok(u64::from_le_bytes(bytes[at..end].try_into().unwrap()))
    };
    let count = read_u64(0)? as usize;
    let table_end = count
        .checked_add(2)
        .and_then(|n| n.checked_mul(8))
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| bad(format!("offset table for {count} entries overruns block")))?;
    let heap = &bytes[table_end..];
    let mut strings = Vec::with_capacity(count);
    let mut prev = read_u64(8)?;
    if prev != 0 {
        return Err(bad(format!("first offset is {prev}, expected 0")));
    }
    for i in 0..count {
        let next = read_u64(16 + i * 8)?;
        if next < prev || next as usize > heap.len() {
            return Err(bad(format!(
                "offset {next} for entry {i} is non-monotonic or overruns heap of {} bytes",
                heap.len()
            )));
        }
        let s = std::str::from_utf8(&heap[prev as usize..next as usize])
            .map_err(|e| bad(format!("entry {i} is not UTF-8: {e}")))?;
        strings.push(s.to_string());
        prev = next;
    }
    if prev as usize != heap.len() {
        return Err(bad(format!(
            "heap has {} trailing bytes past the last offset",
            heap.len() - prev as usize
        )));
    }
    Ok(strings)
}

/// Rebuild a [`Dictionary`] from its decoded strings. Codes are assigned
/// first-seen, so encoding in code order reproduces the original mapping;
/// a duplicate entry means the block lies about its own structure.
pub fn rebuild_dict(region: &str, strings: &[String]) -> Result<Dictionary> {
    let mut dict = Dictionary::new();
    for (i, s) in strings.iter().enumerate() {
        let code = dict.encode(s);
        if code != i as u32 {
            return Err(StoreError::BadBlock {
                region: region.to_string(),
                reason: format!("duplicate dictionary entry {s:?} at code {i}"),
            });
        }
    }
    Ok(dict)
}
