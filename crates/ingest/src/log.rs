//! The append log: producers push row batches, the maintenance thread
//! drains and folds them.
//!
//! Each appended batch is stamped with a dense, monotonically increasing
//! **sequence number** that doubles as a barrier (the risingwave-style
//! consistency marker): once [`IngestLog::wait_folded`] returns for a
//! sequence number, every batch up to and including it is part of the
//! served generation. Producers are backpressured — [`append`] blocks
//! while more than `max_pending_rows` rows wait to be folded — which is
//! what makes staleness *bounded* rather than merely measured.
//!
//! [`append`]: IngestLog::append

use crate::IngestError;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use tabula_storage::{validate_row, Schema, Value};

/// One appended batch of rows, stamped with its barrier sequence number.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Barrier sequence number: dense, 1-based, assigned at append time.
    pub seq: u64,
    /// Row tuples, schema-validated against the served table.
    pub rows: Vec<Vec<Value>>,
    /// When the batch entered the log — the freshness-lag clock starts
    /// here and stops when the generation containing the batch is
    /// published.
    pub appended_at: Instant,
}

#[derive(Debug)]
struct LogState {
    pending: VecDeque<Batch>,
    pending_rows: usize,
    /// Sequence number the next appended batch will receive.
    next_seq: u64,
    /// Highest sequence number folded into a *published* generation.
    folded_seq: u64,
    appended_batches: u64,
    appended_rows: u64,
    /// Set by [`IngestLog::close`]: no further appends are accepted; the
    /// maintenance thread drains what is pending and halts.
    closed: bool,
    /// Set when the maintenance loop exits (clean drain or fold failure)
    /// so barrier waiters are never left blocking on progress that will
    /// not come.
    halted: bool,
}

/// Bounded multi-producer append log feeding the maintenance thread.
#[derive(Debug)]
pub struct IngestLog {
    schema: Schema,
    state: Mutex<LogState>,
    /// Producers → maintenance: batches arrived, or the log closed.
    arrival: Condvar,
    /// Maintenance → waiters: `folded_seq` advanced, backpressure freed,
    /// or the loop halted.
    progress: Condvar,
    max_pending_rows: usize,
}

impl IngestLog {
    /// An empty log for rows of `schema`, backpressuring producers once
    /// `max_pending_rows` rows wait to be folded.
    pub fn new(schema: Schema, max_pending_rows: usize) -> Self {
        IngestLog {
            schema,
            state: Mutex::new(LogState {
                pending: VecDeque::new(),
                pending_rows: 0,
                next_seq: 1,
                folded_seq: 0,
                appended_batches: 0,
                appended_rows: 0,
                closed: false,
                halted: false,
            }),
            arrival: Condvar::new(),
            progress: Condvar::new(),
            max_pending_rows: max_pending_rows.max(1),
        }
    }

    /// Schema every appended row must satisfy.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Append one batch, returning its barrier sequence number.
    ///
    /// Rows are validated against the schema *here*, at the producer, so
    /// a malformed row fails its own append instead of poisoning the
    /// maintenance thread later. Blocks while the log is over its
    /// pending-row bound (bounded staleness); a batch larger than the
    /// bound is still accepted when the log is otherwise empty.
    pub fn append(&self, rows: Vec<Vec<Value>>) -> Result<u64, IngestError> {
        if rows.is_empty() {
            return Err(IngestError::EmptyBatch);
        }
        for row in &rows {
            validate_row(&self.schema, row).map_err(IngestError::Row)?;
        }
        let mut s = self.state.lock().unwrap();
        while !s.closed
            && !s.pending.is_empty()
            && s.pending_rows + rows.len() > self.max_pending_rows
        {
            s = self.progress.wait(s).unwrap();
        }
        if s.closed {
            return Err(IngestError::Closed);
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        s.pending_rows += rows.len();
        s.appended_batches += 1;
        s.appended_rows += rows.len() as u64;
        s.pending.push_back(Batch { seq, rows, appended_at: Instant::now() });
        drop(s);
        self.arrival.notify_one();
        Ok(seq)
    }

    /// Maintenance side: wait up to `timeout` for pending batches, then
    /// drain at most `max_batches` of them (empty when the timeout
    /// expires or the log closed with nothing left).
    pub(crate) fn wait_drain(&self, max_batches: usize, timeout: Duration) -> Vec<Batch> {
        let mut s = self.state.lock().unwrap();
        if s.pending.is_empty() && !s.closed {
            (s, _) = self.arrival.wait_timeout(s, timeout).unwrap();
        }
        let take = max_batches.max(1).min(s.pending.len());
        let drained: Vec<Batch> = s.pending.drain(..take).collect();
        s.pending_rows -= drained.iter().map(|b| b.rows.len()).sum::<usize>();
        drop(s);
        if !drained.is_empty() {
            // Backpressured producers may proceed; rows now in flight are
            // bounded by one fold's worth on top of `max_pending_rows`.
            self.progress.notify_all();
        }
        drained
    }

    /// Maintenance side: everything up to `seq` is now served.
    pub(crate) fn mark_folded(&self, seq: u64) {
        let mut s = self.state.lock().unwrap();
        s.folded_seq = s.folded_seq.max(seq);
        drop(s);
        self.progress.notify_all();
    }

    /// Maintenance side: the loop exited; wake every waiter for good.
    pub(crate) fn mark_halted(&self) {
        let mut s = self.state.lock().unwrap();
        s.halted = true;
        drop(s);
        self.progress.notify_all();
        self.arrival.notify_all();
    }

    /// Stop accepting appends and let the maintenance thread drain out.
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap();
        s.closed = true;
        drop(s);
        self.arrival.notify_all();
        self.progress.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Highest barrier sequence number folded into a served generation.
    pub fn folded_seq(&self) -> u64 {
        self.state.lock().unwrap().folded_seq
    }

    /// Sequence number of the most recently appended batch (0 if none).
    pub fn last_appended_seq(&self) -> u64 {
        self.state.lock().unwrap().next_seq - 1
    }

    /// Block until every batch up to `seq` is part of the served
    /// generation. Returns `false` if the maintenance loop halted before
    /// getting there (shutdown or fold failure).
    pub fn wait_folded(&self, seq: u64) -> bool {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.folded_seq >= seq {
                return true;
            }
            if s.halted {
                return false;
            }
            s = self.progress.wait(s).unwrap();
        }
    }

    /// Unfolded backlog: (batches, rows).
    pub fn pending(&self) -> (usize, usize) {
        let s = self.state.lock().unwrap();
        (s.pending.len(), s.pending_rows)
    }

    /// Totals accepted so far: (batches, rows).
    pub fn appended(&self) -> (u64, u64) {
        let s = self.state.lock().unwrap();
        (s.appended_batches, s.appended_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_data::{TaxiConfig, TaxiGenerator};

    fn rows(n: usize, seed: u64) -> Vec<Vec<Value>> {
        let t = TaxiGenerator::new(TaxiConfig { rows: n, seed }).generate();
        (0..t.len()).map(|r| t.row(r)).collect()
    }

    #[test]
    fn sequence_numbers_are_dense_and_validated() {
        let schema =
            TaxiGenerator::new(TaxiConfig { rows: 1, seed: 1 }).generate().schema().clone();
        let log = IngestLog::new(schema, 1 << 20);
        assert_eq!(log.append(rows(3, 1)).unwrap(), 1);
        assert_eq!(log.append(rows(2, 2)).unwrap(), 2);
        assert_eq!(log.last_appended_seq(), 2);
        assert_eq!(log.pending(), (2, 5));
        // Empty and malformed batches are rejected at the producer.
        assert_eq!(log.append(Vec::new()), Err(IngestError::EmptyBatch));
        assert!(matches!(log.append(vec![vec![Value::Int64(1)]]), Err(IngestError::Row(_))));
        // Draining preserves order and frees the backlog accounting.
        let drained = log.wait_drain(8, Duration::from_millis(1));
        assert_eq!(drained.iter().map(|b| b.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(log.pending(), (0, 0));
        log.mark_folded(2);
        assert!(log.wait_folded(2));
    }

    #[test]
    fn close_rejects_appends_and_halt_unblocks_waiters() {
        let schema =
            TaxiGenerator::new(TaxiConfig { rows: 1, seed: 1 }).generate().schema().clone();
        let log = IngestLog::new(schema, 16);
        log.append(rows(1, 3)).unwrap();
        log.close();
        assert_eq!(log.append(rows(1, 4)), Err(IngestError::Closed));
        // Batch 1 never folds; a halted log must not hang the waiter.
        log.mark_halted();
        assert!(!log.wait_folded(1));
    }
}
