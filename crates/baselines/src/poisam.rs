//! The **POIsam** baseline (Guo et al., SIGMOD 2018, as modified by the
//! Tabula paper's experiments): like SampleOnTheFly, but the greedy
//! sampler runs over a *random pre-sample* of the query result rather
//! than the full population. That bounds the online-sampling cost, at the
//! price of a probabilistic (not deterministic) guarantee: the returned
//! sample's loss is measured against the pre-sample, so it can exceed θ
//! on the true population — the paper observes 1–5 % excess, occasionally
//! above the threshold.

use crate::{Approach, ApproachAnswer};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tabula_core::loss::AccuracyLoss;
use tabula_core::SerflingConfig;
use tabula_storage::{Predicate, RowId, Table};

/// POIsam over a given loss function.
pub struct PoiSam<L> {
    table: Arc<Table>,
    loss: L,
    theta: f64,
    presample_size: usize,
    /// Per-query seed counter so repeated queries draw fresh pre-samples
    /// while the whole run stays deterministic.
    counter: AtomicU64,
    base_seed: u64,
}

impl<L: AccuracyLoss> PoiSam<L> {
    /// Create the baseline with the paper's POIsam defaults: pre-sample
    /// sized by the law of large numbers at 5 % error / 10 % failure
    /// probability.
    pub fn new(table: Arc<Table>, loss: L, theta: f64, seed: u64) -> Self {
        let presample_size = SerflingConfig { epsilon: 0.05, delta: 0.10 }.sample_size();
        PoiSam { table, loss, theta, presample_size, counter: AtomicU64::new(0), base_seed: seed }
    }

    /// Override the pre-sample size.
    pub fn with_presample_size(mut self, size: usize) -> Self {
        self.presample_size = size;
        self
    }
}

impl<L: AccuracyLoss> Approach for PoiSam<L> {
    fn name(&self) -> &'static str {
        "POIsam"
    }

    fn memory_bytes(&self) -> usize {
        0
    }

    fn query(&self, pred: &Predicate) -> ApproachAnswer {
        let start = Instant::now();
        let raw = pred.filter(&self.table).expect("workload predicates reference valid columns");
        // Random pre-sample of the query result.
        let nth = self.counter.fetch_add(1, Ordering::Relaxed);
        let mut rng = SmallRng::seed_from_u64(self.base_seed.wrapping_add(nth));
        let presample: Vec<RowId> = if raw.len() <= self.presample_size {
            raw.clone()
        } else {
            rand::seq::index::sample(&mut rng, raw.len(), self.presample_size)
                .into_iter()
                .map(|i| raw[i])
                .collect()
        };
        // Greedy sampling treats the pre-sample as the dataset — this is
        // where the deterministic guarantee is traded away.
        let rows = self.loss.sample_greedy(&self.table, &presample, self.theta);
        ApproachAnswer { rows, data_system_time: start.elapsed() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_core::loss::{HeatmapLoss, HistogramLoss, Metric};
    use tabula_data::{TaxiConfig, TaxiGenerator};

    fn table() -> Arc<Table> {
        Arc::new(TaxiGenerator::new(TaxiConfig { rows: 6_000, seed: 4 }).generate())
    }

    #[test]
    fn loss_is_guaranteed_on_the_presample() {
        let t = table();
        let pickup = t.schema().index_of("pickup").unwrap();
        let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
        let theta = 0.02;
        let poisam = PoiSam::new(Arc::clone(&t), loss.clone(), theta, 11);
        let pred = Predicate::eq("payment_type", "credit");
        let ans = poisam.query(&pred);
        // Against the *true* population the loss is close to θ but may
        // exceed it slightly; it must never be wildly off.
        let raw = pred.filter(&t).unwrap();
        let achieved = loss.loss(&t, &raw, &ans.rows);
        assert!(achieved <= theta * 2.0, "achieved {achieved} vs θ {theta}");
    }

    #[test]
    fn presample_caps_the_greedy_input() {
        let t = table();
        let fare = t.schema().index_of("fare_amount").unwrap();
        let loss = HistogramLoss::new(fare);
        let poisam = PoiSam::new(Arc::clone(&t), loss, 0.25, 9).with_presample_size(50);
        let ans = poisam.query(&Predicate::all());
        assert!(ans.rows.len() <= 50);
    }

    #[test]
    fn small_populations_skip_presampling() {
        let t = table();
        let fare = t.schema().index_of("fare_amount").unwrap();
        let loss = HistogramLoss::new(fare);
        let theta = 0.5;
        let poisam = PoiSam::new(Arc::clone(&t), loss.clone(), theta, 1);
        // dispute ∩ jfk is tiny (often < presample size): the exact
        // population is used, restoring the deterministic guarantee.
        let pred = Predicate::eq("payment_type", "dispute").and(
            "rate_code",
            tabula_storage::CmpOp::Eq,
            "jfk",
        );
        let raw = pred.filter(&t).unwrap();
        if raw.len() <= 1000 && !raw.is_empty() {
            let ans = poisam.query(&pred);
            let achieved = loss.loss(&t, &raw, &ans.rows);
            assert!(achieved <= theta + 1e-12);
        }
    }
}
