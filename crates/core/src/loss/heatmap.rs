//! Function 2 of the paper: the geospatial visualization-aware loss
//! `(1/|Raw|) Σ_{x∈Raw} min_{s∈Sam} dist(x, s)` — the average distance
//! from each raw point to its nearest sample point. Samples with low loss
//! produce heat maps visually indistinguishable from the raw data's
//! (VAS / POIsam's objective).

use super::index::GridIndex;
use super::AccuracyLoss;
use crate::sampling::{coverage_greedy, CoverageSpace};
use tabula_storage::agg::SumCount;
use tabula_storage::{Point, RowId, Table};

/// Pairwise distance metric used between two points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Euclidean (L2) distance.
    Euclidean,
    /// Manhattan (L1) distance.
    Manhattan,
}

impl Metric {
    /// Distance between two points under this metric.
    #[inline]
    pub fn dist(self, a: &Point, b: &Point) -> f64 {
        match self {
            Metric::Euclidean => a.euclidean(b),
            Metric::Manhattan => a.manhattan(b),
        }
    }
}

/// Geospatial heat-map accuracy loss over one point-typed attribute.
#[derive(Debug, Clone)]
pub struct HeatmapLoss {
    point_col: usize,
    metric: Metric,
}

impl HeatmapLoss {
    /// Loss over the `Point` column at index `point_col`.
    pub fn new(point_col: usize, metric: Metric) -> Self {
        HeatmapLoss { point_col, metric }
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    #[inline]
    fn point(&self, table: &Table, row: RowId) -> Point {
        table
            .column(self.point_col)
            .as_point_slice()
            .expect("HeatmapLoss target attribute must be a Point column")[row as usize]
    }
}

/// Sample context: a nearest-neighbour index over the sample's points.
pub struct HeatmapCtx {
    index: GridIndex,
    metric: Metric,
}

impl HeatmapCtx {
    #[inline]
    fn nearest(&self, q: &Point) -> f64 {
        match self.metric {
            Metric::Euclidean => self.index.nearest_dist(q),
            Metric::Manhattan => self.index.nearest_dist_manhattan(q),
        }
    }
}

impl AccuracyLoss for HeatmapLoss {
    /// Sum and count of per-row min distances to the fixed sample.
    type State = SumCount;
    type SampleCtx = HeatmapCtx;

    fn name(&self) -> &'static str {
        "heatmap_avg_min_dist"
    }

    fn state_depends_on_sample(&self) -> bool {
        true
    }

    fn prepare(&self, table: &Table, sample: &[RowId]) -> HeatmapCtx {
        let points: Vec<Point> = sample.iter().map(|&r| self.point(table, r)).collect();
        HeatmapCtx { index: GridIndex::build(points), metric: self.metric }
    }

    fn fold(&self, ctx: &HeatmapCtx, state: &mut SumCount, table: &Table, row: RowId) {
        let p = self.point(table, row);
        state.add(ctx.nearest(&p));
    }

    fn finish(&self, _ctx: &HeatmapCtx, state: &SumCount) -> f64 {
        state.mean().unwrap_or(0.0)
    }

    fn loss_within(
        &self,
        table: &Table,
        raw: &[RowId],
        ctx: &HeatmapCtx,
        bound: f64,
    ) -> Option<f64> {
        if raw.is_empty() {
            return Some(0.0);
        }
        // Early exit: contributions are non-negative, so once the running
        // sum exceeds bound·|raw| the final average must exceed the bound.
        let budget = bound * raw.len() as f64;
        let mut sum = 0.0;
        for &r in raw {
            sum += ctx.nearest(&self.point(table, r));
            if sum > budget {
                return None;
            }
        }
        Some(sum / raw.len() as f64)
    }

    fn signature(&self, table: &Table, rows: &[RowId]) -> [f64; 2] {
        // Centroid of the set's points.
        if rows.is_empty() {
            return [0.0, 0.0];
        }
        let (mut sx, mut sy) = (0.0, 0.0);
        for &r in rows {
            let p = self.point(table, r);
            sx += p.x;
            sy += p.y;
        }
        let n = rows.len() as f64;
        [sx / n, sy / n]
    }

    fn sample_greedy(&self, table: &Table, raw: &[RowId], theta: f64) -> Vec<RowId> {
        let points: Vec<Point> = raw.iter().map(|&r| self.point(table, r)).collect();
        let metric = self.metric;
        let picked = coverage_greedy(&PointSpace { points, metric }, theta);
        picked.into_iter().map(|i| raw[i]).collect()
    }
}

/// Coverage space over 2-D points for the lazy-forward greedy engine.
struct PointSpace {
    points: Vec<Point>,
    metric: Metric,
}

impl CoverageSpace for PointSpace {
    fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn dist(&self, a: usize, b: usize) -> f64 {
        self.metric.dist(&self.points[a], &self.points[b])
    }

    fn center_element(&self) -> usize {
        // The point nearest the centroid seeds the greedy sample.
        let n = self.points.len() as f64;
        let cx = self.points.iter().map(|p| p.x).sum::<f64>() / n;
        let cy = self.points.iter().map(|p| p.y).sum::<f64>() / n;
        let c = Point::new(cx, cy);
        let mut best = (f64::INFINITY, 0);
        for (i, p) in self.points.iter().enumerate() {
            let d = self.metric.dist(p, &c);
            if d < best.0 {
                best = (d, i);
            }
        }
        best.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tabula_storage::{ColumnType, Field, Schema, TableBuilder};

    fn table(points: &[(f64, f64)]) -> Table {
        let schema = Schema::new(vec![Field::new("p", ColumnType::Point)]);
        let mut b = TableBuilder::new(schema);
        for &(x, y) in points {
            b.push_row(&[Point::new(x, y).into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn exact_loss_small_case() {
        // Raw: 4 corners of a unit square; sample: one corner.
        let t = table(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)]);
        let loss = HeatmapLoss::new(0, Metric::Euclidean);
        let all: Vec<RowId> = t.all_rows();
        let expected = (0.0 + 1.0 + 1.0 + 2f64.sqrt()) / 4.0;
        assert!((loss.loss(&t, &all, &[0]) - expected).abs() < 1e-12);
        // Manhattan: (0 + 1 + 1 + 2) / 4.
        let l1 = HeatmapLoss::new(0, Metric::Manhattan);
        assert!((l1.loss(&t, &all, &[0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loss_within_early_exit_consistency() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pts: Vec<(f64, f64)> =
            (0..300).map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0))).collect();
        let t = table(&pts);
        let loss = HeatmapLoss::new(0, Metric::Euclidean);
        let all: Vec<RowId> = t.all_rows();
        let sample: Vec<RowId> = (0..20).collect();
        let exact = loss.loss(&t, &all, &sample);
        let ctx = loss.prepare(&t, &sample);
        assert!(loss.loss_within(&t, &all, &ctx, exact * 1.001).is_some());
        assert!(loss.loss_within(&t, &all, &ctx, exact * 0.999).is_none());
    }

    #[test]
    fn greedy_covers_clusters() {
        // Two tight clusters: a sample meeting a tight threshold must take
        // at least one point from each.
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push((0.1 + (i as f64) * 1e-4, 0.1));
            pts.push((0.9 + (i as f64) * 1e-4, 0.9));
        }
        let t = table(&pts);
        let loss = HeatmapLoss::new(0, Metric::Euclidean);
        let all: Vec<RowId> = t.all_rows();
        let sample = loss.sample_greedy(&t, &all, 0.01);
        let achieved = loss.loss(&t, &all, &sample);
        assert!(achieved <= 0.01);
        let pickups = t.column(0).as_point_slice().unwrap();
        let near = |c: (f64, f64)| {
            sample.iter().any(|&r| pickups[r as usize].euclidean(&Point::new(c.0, c.1)) < 0.1)
        };
        assert!(near((0.1, 0.1)) && near((0.9, 0.9)));
        // Far fewer sample points than raw points.
        assert!(sample.len() < all.len() / 2);
    }

    #[test]
    fn greedy_matches_threshold_on_random_data() {
        let mut rng = SmallRng::seed_from_u64(9);
        let pts: Vec<(f64, f64)> =
            (0..500).map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0))).collect();
        let t = table(&pts);
        let all: Vec<RowId> = t.all_rows();
        for metric in [Metric::Euclidean, Metric::Manhattan] {
            let loss = HeatmapLoss::new(0, metric);
            for theta in [0.2, 0.05, 0.02] {
                let sample = loss.sample_greedy(&t, &all, theta);
                let achieved = loss.loss(&t, &all, &sample);
                assert!(achieved <= theta + 1e-12, "{metric:?} θ={theta}: {achieved}");
            }
        }
    }

    #[test]
    fn tighter_threshold_needs_more_samples() {
        let mut rng = SmallRng::seed_from_u64(4);
        let pts: Vec<(f64, f64)> =
            (0..400).map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0))).collect();
        let t = table(&pts);
        let loss = HeatmapLoss::new(0, Metric::Euclidean);
        let all: Vec<RowId> = t.all_rows();
        let loose = loss.sample_greedy(&t, &all, 0.2).len();
        let tight = loss.sample_greedy(&t, &all, 0.02).len();
        assert!(tight > loose, "tight {tight} vs loose {loose}");
    }
}
