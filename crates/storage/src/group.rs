//! Hash group-by on categorical attribute tuples.
//!
//! Grouping is morsel-parallel: each ~64k-row morsel packs its codes into
//! a row-major buffer ([`crate::packed::PackedCodes`], no per-row
//! allocation) and builds a partial map; partials merge in ascending
//! morsel order, so group contents, their row order, and map insertion
//! order are all independent of `TABULA_THREADS`.

use crate::fx::FxHashMap;
use crate::packed::PackedCodes;
use crate::table::{Cat, RowId, Table};
use crate::Result;
use tabula_par::{Pool, DEFAULT_MORSEL_ROWS};

/// Result of a group-by: each group's code tuple and its member rows.
#[derive(Debug, Clone, Default)]
pub struct GroupedRows {
    /// Map from group key (one code per grouping column, in column order)
    /// to the row ids belonging to the group.
    pub groups: FxHashMap<Vec<u32>, Vec<RowId>>,
}

impl GroupedRows {
    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// Group all rows of `table` by the categorical columns `cols`.
///
/// Cost: one pass over the data, hashing one small integer tuple per row —
/// this is the `GroupBy` primitive the paper's cost model (Inequality 1)
/// prices as `N·log_k(N)`.
pub fn group_by(table: &Table, cols: &[usize]) -> Result<GroupedRows> {
    let rows: Vec<RowId> = table.all_rows();
    group_rows(table, cols, &rows)
}

/// Group an explicit subset of rows of `table` by the categorical columns
/// `cols`. Used by the real-run stage after pruning to iceberg-cell rows.
pub fn group_rows(table: &Table, cols: &[usize], rows: &[RowId]) -> Result<GroupedRows> {
    let cats: Vec<Cat<'_>> = cols.iter().map(|&c| table.cat(c)).collect::<Result<_>>()?;
    let code_slices: Vec<&[u32]> = cats.iter().map(|c| c.codes()).collect();
    let pool = Pool::global();
    let partials = pool.par_chunks(rows.len(), DEFAULT_MORSEL_ROWS, |range| {
        let morsel = &rows[range];
        let mut packed = PackedCodes::new(cols.len());
        packed.fill(&code_slices, morsel);
        let mut groups: FxHashMap<Vec<u32>, Vec<RowId>> = FxHashMap::default();
        for (i, &row) in morsel.iter().enumerate() {
            let key = packed.key(i);
            match groups.get_mut(key) {
                Some(v) => v.push(row),
                None => {
                    groups.insert(key.to_vec(), vec![row]);
                }
            }
        }
        groups
    });
    // Ordered merge: group members concatenate in morsel order, i.e. in
    // the caller's original row order — identical to a serial pass.
    let mut iter = partials.into_iter();
    let mut groups = iter.next().unwrap_or_default();
    for partial in iter {
        for (key, mut members) in partial {
            match groups.get_mut(&key) {
                Some(v) => v.append(&mut members),
                None => {
                    groups.insert(key, members);
                }
            }
        }
    }
    Ok(GroupedRows { groups })
}

/// Project each row of `rows` to its code tuple under `cols` without
/// grouping, packed row-major (one allocation total, not one per row).
/// Useful for membership probes against a set of cells.
pub fn project_codes(table: &Table, cols: &[usize], rows: &[RowId]) -> Result<PackedCodes> {
    let cats: Vec<Cat<'_>> = cols.iter().map(|&c| table.cat(c)).collect::<Result<_>>()?;
    let code_slices: Vec<&[u32]> = cats.iter().map(|c| c.codes()).collect();
    let mut packed = PackedCodes::new(cols.len());
    packed.fill(&code_slices, rows);
    Ok(packed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use crate::types::ColumnType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("payment", ColumnType::Str),
            Field::new("passengers", ColumnType::Int64),
            Field::new("fare", ColumnType::Float64),
        ]);
        let mut b = TableBuilder::new(schema);
        let data: [(&str, i64, f64); 6] = [
            ("cash", 1, 5.0),
            ("credit", 2, 9.5),
            ("cash", 1, 7.25),
            ("dispute", 3, 12.0),
            ("cash", 2, 3.0),
            ("credit", 2, 4.0),
        ];
        for (p, n, f) in data {
            b.push_row(&[p.into(), n.into(), f.into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn single_column_groups() {
        let t = table();
        let g = group_by(&t, &[0]).unwrap();
        assert_eq!(g.len(), 3);
        // payment codes: cash=0, credit=1, dispute=2 (first-seen order).
        assert_eq!(g.groups[&vec![0]], vec![0, 2, 4]);
        assert_eq!(g.groups[&vec![1]], vec![1, 5]);
        assert_eq!(g.groups[&vec![2]], vec![3]);
    }

    #[test]
    fn multi_column_groups() {
        let t = table();
        let g = group_by(&t, &[0, 1]).unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.groups[&vec![0, 0]], vec![0, 2]); // cash, 1
        assert_eq!(g.groups[&vec![1, 1]], vec![1, 5]); // credit, 2
        assert_eq!(g.groups[&vec![0, 1]], vec![4]); // cash, 2
        assert_eq!(g.groups[&vec![2, 2]], vec![3]); // dispute, 3
    }

    #[test]
    fn group_subset_of_rows() {
        let t = table();
        let g = group_rows(&t, &[0], &[1, 3, 5]).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.groups[&vec![1]], vec![1, 5]);
        assert_eq!(g.groups[&vec![2]], vec![3]);
    }

    #[test]
    fn grouping_on_empty_column_list_yields_one_group() {
        let t = table();
        let g = group_by(&t, &[]).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.groups[&vec![]].len(), 6);
    }

    #[test]
    fn non_categorical_column_is_error() {
        let t = table();
        assert!(group_by(&t, &[2]).is_err());
    }

    #[test]
    fn project_codes_matches_group_keys() {
        let t = table();
        let codes = project_codes(&t, &[0, 1], &[0, 3]).unwrap();
        let keys: Vec<&[u32]> = codes.keys().collect();
        assert_eq!(keys, vec![&[0, 0][..], &[2, 2][..]]);
    }
}
