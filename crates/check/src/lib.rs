//! # tabula-check
//!
//! The differential-testing subsystem of the workspace: everything needed
//! to cross-examine the production pipeline (`tabula-core`, `tabula-sql`,
//! `tabula-storage`) against a naive reference implementation that is
//! simple enough to be trusted by inspection.
//!
//! Three pieces:
//!
//! * [`oracle`] — the reference implementation: brute-force loss
//!   evaluation straight from raw filtered rows (no indexes, no algebraic
//!   states), an exhaustive per-cell cube built by plain group-by over
//!   every cuboid, and a tree-walking evaluator for SQL `WHERE` clauses.
//! * [`generate`] — seeded, deterministic generation of random tables,
//!   cube-attribute subsets, θ values, query workloads and SQL statement
//!   ASTs. Same seed, same case — always.
//! * [`diff`] — the diff engine: replays each case through the real
//!   pipeline under every [`MaterializationMode`](tabula_core::MaterializationMode)
//!   and multiple thread counts, compares against the oracle, and on
//!   divergence auto-shrinks the case (drop rows → queries → attributes)
//!   into a minimal reproducer it can print as a ready-to-paste
//!   regression test.
//!
//! The crate is a library first — `tests/fuzz_differential.rs` and
//! `tests/sql_oracle.rs` at the workspace root drive it from the
//! integration suite — and the `fuzz_check` binary in `tabula-bench`
//! wraps it for CI smoke runs and long fuzzing sessions:
//!
//! ```text
//! cargo run --release -p tabula-bench --bin fuzz_check -- --seed 42 --cases 200
//! ```
//!
//! ## What counts as a divergence
//!
//! * a served sample whose naive loss against the cell's raw rows
//!   exceeds `θ + LOSS_EPS` (the θ-guarantee, checked exhaustively over
//!   every cell of every cuboid and over the query workload);
//! * a materialized local sample containing rows from outside its cell;
//! * an iceberg classification that contradicts the oracle's (outside a
//!   float borderline band);
//! * `FullSamCube` not materializing the whole lattice, or `Tabula` and
//!   `TabulaStar` materializing different cell sets;
//! * any byte-level difference between cubes built at different thread
//!   counts;
//! * an `EmptyDomain` answer for a query that matches raw rows;
//! * with the snapshot lane on ([`set_snapshot_lane`], `fuzz_check
//!   --snapshot`): a thawed `tabula-store` snapshot whose fingerprint,
//!   workload answers, or re-frozen bytes differ from the original cube.

pub mod diff;
pub mod generate;
pub mod ingest;
pub mod oracle;

pub use diff::{
    diff_case, diff_sql_case, diff_with_loss, encoding_lane, set_encoding_lane, set_snapshot_lane,
    shrink, snapshot_lane, CaseReport, Divergence, NaiveEval, Shrunk, MODES, THREAD_COUNTS,
};
pub use generate::{gen_case, gen_statement, gen_statements, gen_where_terms, CaseSpec};
pub use ingest::{diff_ingest_case, IngestReport, INGEST_BARRIERS};
pub use oracle::{naive_cube, naive_filter, naive_term_matches, LossSpec, NaiveCube};
