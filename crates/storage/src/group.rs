//! Hash group-by on categorical attribute tuples.
//!
//! Grouping is morsel-parallel: each ~64k-row morsel packs its codes and
//! builds a partial table; partials merge in ascending morsel order, so
//! group contents, their row order, and map insertion order are all
//! independent of `TABULA_THREADS`.
//!
//! When the bit-packed key fits 64 bits (see [`crate::packed::KeyLayout`])
//! the kernel is vectorized: chunks of [`crate::kernel::chunk_rows`] rows
//! pack into a `u64` key buffer, probe a slot map, and append members to
//! dense per-slot vectors — one word hashed per row, no slice keys, no
//! per-group key allocation until the final decode. The scalar slice-key
//! path remains as the fallback (and the `TABULA_KERNELS=scalar`
//! reference); both produce identical results.

use crate::encoding::RunsView;
use crate::fx::FxHashMap;
use crate::kernel;
use crate::packed::{KeyLayout, PackedCodes, PackedKeyBuf};
use crate::table::{Cat, RowId, Table};
use crate::Result;
use tabula_par::{Pool, DEFAULT_MORSEL_ROWS};

/// Result of a group-by: each group's code tuple and its member rows.
#[derive(Debug, Clone, Default)]
pub struct GroupedRows {
    /// Map from group key (one code per grouping column, in column order)
    /// to the row ids belonging to the group.
    pub groups: FxHashMap<Vec<u32>, Vec<RowId>>,
}

impl GroupedRows {
    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// The two row sources a grouping kernel can scan: every row of the table
/// (contiguous — no row-id indirection), or an explicit subset.
enum RowSrc<'a> {
    All(usize),
    Subset(&'a [RowId]),
}

impl RowSrc<'_> {
    fn len(&self) -> usize {
        match self {
            RowSrc::All(n) => *n,
            RowSrc::Subset(rows) => rows.len(),
        }
    }

    #[inline]
    fn row(&self, i: usize) -> RowId {
        match self {
            RowSrc::All(_) => i as RowId,
            RowSrc::Subset(rows) => rows[i],
        }
    }
}

/// Group all rows of `table` by the categorical columns `cols`.
///
/// Cost: one pass over the data, hashing one small integer tuple per row —
/// this is the `GroupBy` primitive the paper's cost model (Inequality 1)
/// prices as `N·log_k(N)`. The full-table form scans contiguous ranges
/// directly; no row-id list is materialized.
pub fn group_by(table: &Table, cols: &[usize]) -> Result<GroupedRows> {
    group_impl(table, cols, RowSrc::All(table.len()))
}

/// Group an explicit subset of rows of `table` by the categorical columns
/// `cols`. Used by the real-run stage after pruning to iceberg-cell rows.
pub fn group_rows(table: &Table, cols: &[usize], rows: &[RowId]) -> Result<GroupedRows> {
    group_impl(table, cols, RowSrc::Subset(rows))
}

fn group_impl(table: &Table, cols: &[usize], src: RowSrc<'_>) -> Result<GroupedRows> {
    let cats: Vec<Cat<'_>> = cols.iter().map(|&c| table.cat(c)).collect::<Result<_>>()?;
    let cards: Vec<usize> = cats.iter().map(|c| c.cardinality()).collect();
    let layout = if kernel::vectorize() { KeyLayout::from_cardinalities(&cards) } else { None };
    // Run-aligned grouping: full-table scans where every grouping column
    // exposes RLE runs — checked *before* `codes()`, which would force a
    // decode of an encoded column.
    if let (Some(layout), RowSrc::All(n)) = (&layout, &src) {
        let run_views: Option<Vec<RunsView<'_, u32>>> = cats.iter().map(|c| c.runs()).collect();
        if let Some(runs) = run_views {
            if !runs.is_empty() {
                tabula_obs::global().counter("group.kernel.runs").inc();
                return Ok(GroupedRows { groups: group_runs(layout, &runs, *n) });
            }
        }
    }
    let code_slices: Vec<&[u32]> = cats.iter().map(|c| c.codes()).collect();
    let groups = match &layout {
        Some(layout) => group_vectorized(layout, &code_slices, &src),
        None => group_scalar(cols.len(), &code_slices, &src),
    };
    Ok(GroupedRows { groups })
}

/// Run-aligned grouping over RLE-encoded columns: per morsel, walk the
/// columns' runs in lockstep and split the morsel into maximal segments
/// of constant key — one key encode and one slot probe per *segment*,
/// with members appended as a whole row range. Segment order is row
/// order, so first-seen group order, member order, and the morsel merge
/// are identical to [`group_vectorized`] / [`group_scalar`].
fn group_runs(
    layout: &KeyLayout,
    runs: &[RunsView<'_, u32>],
    len: usize,
) -> FxHashMap<Vec<u32>, Vec<RowId>> {
    let pool = Pool::global();
    let partials: Vec<(Vec<u64>, Vec<Vec<RowId>>)> =
        pool.par_chunks(len, DEFAULT_MORSEL_ROWS, |range| {
            let mut slots: FxHashMap<u64, u32> = FxHashMap::default();
            let mut keys: Vec<u64> = Vec::new();
            let mut members: Vec<Vec<RowId>> = Vec::new();
            let mut cursors: Vec<usize> = runs
                .iter()
                .map(|rv| rv.ends.partition_point(|&e| (e as usize) <= range.start))
                .collect();
            let mut scratch = vec![0u32; runs.len()];
            let mut pos = range.start;
            while pos < range.end {
                let mut seg_end = range.end;
                for (ci, rv) in runs.iter().enumerate() {
                    scratch[ci] = rv.values[cursors[ci]];
                    seg_end = seg_end.min(rv.ends[cursors[ci]] as usize);
                }
                let k = layout.encode(&scratch);
                let slot = match slots.get(&k) {
                    Some(&s) => s,
                    None => {
                        let s = keys.len() as u32;
                        slots.insert(k, s);
                        keys.push(k);
                        members.push(Vec::new());
                        s
                    }
                };
                members[slot as usize].extend(pos as RowId..seg_end as RowId);
                for (ci, rv) in runs.iter().enumerate() {
                    if rv.ends[cursors[ci]] as usize == seg_end {
                        cursors[ci] += 1;
                    }
                }
                pos = seg_end;
            }
            (keys, members)
        });
    merge_packed_members(layout, partials)
}

/// Chunked grouping on bit-packed `u64` keys: per morsel, each chunk packs
/// its keys, probes the slot map, and appends members to dense per-slot
/// vectors; morsel partials merge in ascending order and decode once at
/// the end. First-seen group order and member order match [`group_scalar`]
/// exactly.
fn group_vectorized(
    layout: &KeyLayout,
    code_slices: &[&[u32]],
    src: &RowSrc<'_>,
) -> FxHashMap<Vec<u32>, Vec<RowId>> {
    let chunk = kernel::chunk_rows();
    let pool = Pool::global();
    let partials: Vec<(Vec<u64>, Vec<Vec<RowId>>)> =
        pool.par_chunks(src.len(), DEFAULT_MORSEL_ROWS, |range| {
            let mut slots: FxHashMap<u64, u32> = FxHashMap::default();
            let mut keys: Vec<u64> = Vec::new();
            let mut members: Vec<Vec<RowId>> = Vec::new();
            let mut packed = PackedKeyBuf::new();
            let mut start = range.start;
            while start < range.end {
                let end = range.end.min(start + chunk);
                match src {
                    RowSrc::All(_) => packed.fill_range(layout, code_slices, start..end),
                    RowSrc::Subset(rows) => packed.fill(layout, code_slices, &rows[start..end]),
                }
                for (i, &k) in packed.keys().iter().enumerate() {
                    let slot = match slots.get(&k) {
                        Some(&s) => s,
                        None => {
                            let s = keys.len() as u32;
                            slots.insert(k, s);
                            keys.push(k);
                            members.push(Vec::new());
                            s
                        }
                    };
                    members[slot as usize].push(src.row(start + i));
                }
                start = end;
            }
            (keys, members)
        });
    merge_packed_members(layout, partials)
}

/// Merge per-morsel packed partials in ascending morsel order, then
/// decode each `u64` key once at the end.
fn merge_packed_members(
    layout: &KeyLayout,
    partials: Vec<(Vec<u64>, Vec<Vec<RowId>>)>,
) -> FxHashMap<Vec<u32>, Vec<RowId>> {
    let mut slots: FxHashMap<u64, u32> = FxHashMap::default();
    let mut keys: Vec<u64> = Vec::new();
    let mut members: Vec<Vec<RowId>> = Vec::new();
    for (pkeys, pmembers) in partials {
        for (k, mut m) in pkeys.into_iter().zip(pmembers) {
            match slots.get(&k) {
                Some(&slot) => members[slot as usize].append(&mut m),
                None => {
                    slots.insert(k, keys.len() as u32);
                    keys.push(k);
                    members.push(m);
                }
            }
        }
    }
    let mut groups: FxHashMap<Vec<u32>, Vec<RowId>> = FxHashMap::default();
    groups.reserve(keys.len());
    for (k, m) in keys.into_iter().zip(members) {
        groups.insert(layout.decode(k), m);
    }
    groups
}

/// Row-at-a-time reference grouping on row-major `u32` slice keys.
fn group_scalar(
    width: usize,
    code_slices: &[&[u32]],
    src: &RowSrc<'_>,
) -> FxHashMap<Vec<u32>, Vec<RowId>> {
    let pool = Pool::global();
    let partials = pool.par_chunks(src.len(), DEFAULT_MORSEL_ROWS, |range| {
        let mut packed = PackedCodes::new(width);
        match src {
            RowSrc::All(_) => packed.fill_range(code_slices, range.clone()),
            RowSrc::Subset(rows) => packed.fill(code_slices, &rows[range.clone()]),
        }
        let mut groups: FxHashMap<Vec<u32>, Vec<RowId>> = FxHashMap::default();
        for (i, at) in range.enumerate() {
            let key = packed.key(i);
            let row = src.row(at);
            match groups.get_mut(key) {
                Some(v) => v.push(row),
                None => {
                    groups.insert(key.to_vec(), vec![row]);
                }
            }
        }
        groups
    });
    // Ordered merge: group members concatenate in morsel order, i.e. in
    // the caller's original row order — identical to a serial pass.
    let mut iter = partials.into_iter();
    let mut groups = iter.next().unwrap_or_default();
    for partial in iter {
        for (key, mut members) in partial {
            match groups.get_mut(&key) {
                Some(v) => v.append(&mut members),
                None => {
                    groups.insert(key, members);
                }
            }
        }
    }
    groups
}

/// Project each row of `rows` to its code tuple under `cols` without
/// grouping, packed row-major (one allocation total, not one per row).
/// Useful for membership probes against a set of cells.
pub fn project_codes(table: &Table, cols: &[usize], rows: &[RowId]) -> Result<PackedCodes> {
    let cats: Vec<Cat<'_>> = cols.iter().map(|&c| table.cat(c)).collect::<Result<_>>()?;
    let code_slices: Vec<&[u32]> = cats.iter().map(|c| c.codes()).collect();
    let mut packed = PackedCodes::new(cols.len());
    packed.fill(&code_slices, rows);
    Ok(packed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use crate::types::ColumnType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("payment", ColumnType::Str),
            Field::new("passengers", ColumnType::Int64),
            Field::new("fare", ColumnType::Float64),
        ]);
        let mut b = TableBuilder::new(schema);
        let data: [(&str, i64, f64); 6] = [
            ("cash", 1, 5.0),
            ("credit", 2, 9.5),
            ("cash", 1, 7.25),
            ("dispute", 3, 12.0),
            ("cash", 2, 3.0),
            ("credit", 2, 4.0),
        ];
        for (p, n, f) in data {
            b.push_row(&[p.into(), n.into(), f.into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn single_column_groups() {
        let t = table();
        let g = group_by(&t, &[0]).unwrap();
        assert_eq!(g.len(), 3);
        // payment codes: cash=0, credit=1, dispute=2 (first-seen order).
        assert_eq!(g.groups[&vec![0]], vec![0, 2, 4]);
        assert_eq!(g.groups[&vec![1]], vec![1, 5]);
        assert_eq!(g.groups[&vec![2]], vec![3]);
    }

    #[test]
    fn multi_column_groups() {
        let t = table();
        let g = group_by(&t, &[0, 1]).unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.groups[&vec![0, 0]], vec![0, 2]); // cash, 1
        assert_eq!(g.groups[&vec![1, 1]], vec![1, 5]); // credit, 2
        assert_eq!(g.groups[&vec![0, 1]], vec![4]); // cash, 2
        assert_eq!(g.groups[&vec![2, 2]], vec![3]); // dispute, 3
    }

    #[test]
    fn group_subset_of_rows() {
        let t = table();
        let g = group_rows(&t, &[0], &[1, 3, 5]).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.groups[&vec![1]], vec![1, 5]);
        assert_eq!(g.groups[&vec![2]], vec![3]);
    }

    #[test]
    fn grouping_on_empty_column_list_yields_one_group() {
        let t = table();
        let g = group_by(&t, &[]).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.groups[&vec![]].len(), 6);
    }

    #[test]
    fn non_categorical_column_is_error() {
        let t = table();
        assert!(group_by(&t, &[2]).is_err());
    }

    #[test]
    fn project_codes_matches_group_keys() {
        let t = table();
        let codes = project_codes(&t, &[0, 1], &[0, 3]).unwrap();
        let keys: Vec<&[u32]> = codes.keys().collect();
        assert_eq!(keys, vec![&[0, 0][..], &[2, 2][..]]);
    }

    /// The run-aligned kernel must produce groups identical to both the
    /// vectorized (decoded) and scalar kernels — first-seen order and
    /// member order included. Kernels are invoked directly, so no global
    /// mode is touched.
    #[test]
    fn run_aligned_grouping_matches_decoded_kernels() {
        let schema =
            Schema::new(vec![Field::new("a", ColumnType::Str), Field::new("b", ColumnType::Int64)]);
        let mut b = TableBuilder::new(schema);
        for row in 0..1500usize {
            let blk = row / 53;
            b.push_row(&[["x", "y", "z"][blk % 3].into(), ((blk % 5) as i64).into()]).unwrap();
        }
        let t = b.finish();
        let mut cols: Vec<crate::column::Column> = Vec::new();
        for i in 0..2 {
            let mut c = t.column(i).clone();
            c.encode_for_freeze(crate::encoding::EncodingMode::Force);
            cols.push(c);
        }
        let t = Table::from_columns(t.schema().clone(), cols).unwrap();
        let cats: Vec<Cat<'_>> = (0..2).map(|c| t.cat(c).unwrap()).collect();
        let runs: Vec<RunsView<'_, u32>> = cats.iter().map(|c| c.runs().unwrap()).collect();
        let cards: Vec<usize> = cats.iter().map(|c| c.cardinality()).collect();
        let layout = KeyLayout::from_cardinalities(&cards).unwrap();
        let aligned = group_runs(&layout, &runs, t.len());
        let code_slices: Vec<&[u32]> = cats.iter().map(|c| c.codes()).collect();
        let vectorized = group_vectorized(&layout, &code_slices, &RowSrc::All(t.len()));
        let scalar = group_scalar(2, &code_slices, &RowSrc::All(t.len()));
        assert_eq!(aligned, vectorized);
        assert_eq!(aligned, scalar);
    }

    #[test]
    fn scalar_and_vectorized_groupings_agree() {
        use crate::kernel::{set_kernel_mode, KernelMode};
        let t = table();
        let prev = crate::kernel::kernel_mode();
        set_kernel_mode(KernelMode::ForceScalar);
        let scalar = group_by(&t, &[0, 1]).unwrap();
        let scalar_sub = group_rows(&t, &[0, 1], &[5, 1, 0]).unwrap();
        set_kernel_mode(KernelMode::ForceVectorized);
        let vector = group_by(&t, &[0, 1]).unwrap();
        let vector_sub = group_rows(&t, &[0, 1], &[5, 1, 0]).unwrap();
        set_kernel_mode(prev);
        assert_eq!(scalar.groups, vector.groups);
        assert_eq!(scalar_sub.groups, vector_sub.groups);
    }
}
