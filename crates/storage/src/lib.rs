//! # tabula-storage
//!
//! An in-memory columnar table engine: the data-system substrate that the
//! Tabula middleware (crate `tabula-core`) runs on top of.
//!
//! The Tabula paper (Yu & Sarwat, ICDE 2020) assumes "any system that
//! supports the CUBE operator" — e.g. Spark SQL or PostgreSQL. This crate
//! provides exactly the relational machinery those systems contribute to
//! the paper's pipeline:
//!
//! * typed, dictionary-encoded columnar storage ([`Table`], [`Column`],
//!   [`Dictionary`]),
//! * vectorised predicate evaluation ([`Predicate`]),
//! * hash group-by on categorical attribute tuples ([`group`]),
//! * the OLAP **CUBE** operator and its cuboid lattice ([`cube`]), including
//!   the *algebraic rollup* optimization: the finest cuboid is built with a
//!   single scan of the raw data and every coarser cuboid is derived from an
//!   already-computed parent by merging mergeable aggregate states
//!   ([`agg::AggState`]),
//! * the equi-join of raw rows against an iceberg-cell list ([`join`]) used
//!   by the cost-model-guided "real run" stage of cube construction.
//!
//! Tables are built once via [`TableBuilder`] and immutable afterwards,
//! which matches the load-once / analyze-many workload of a visualization
//! dashboard and lets per-column categorical indexes be cached safely.

pub mod agg;
pub mod column;
pub mod cube;
pub mod dictionary;
pub mod encoding;
pub mod fx;
pub mod group;
pub mod join;
pub mod kernel;
pub mod packed;
pub mod predicate;
pub mod schema;
pub mod shared;
pub mod table;
pub mod types;

pub use agg::AggState;
pub use column::Column;
pub use cube::{CellKey, CuboidMask, Lattice};
pub use dictionary::Dictionary;
pub use encoding::{
    decode_count, encoding_mode, set_encoding_mode, Codable, Encoded, EncodedBuf, EncodingMode,
};
pub use fx::{FxHashMap, FxHashSet};
pub use group::{group_by, GroupedRows};
pub use kernel::{chunk_rows, kernel_mode, set_kernel_mode, KernelMode, SelectionVector};
pub use packed::{KeyLayout, PackedCodes, PackedKeyBuf};
pub use predicate::{CmpOp, Predicate, ScanKernel, ScanStats};
pub use schema::{Field, Schema};
pub use shared::{ColumnBuf, SharedSlice};
pub use table::{validate_row, RowId, Table, TableBuilder};
pub use types::{ColumnType, Point, Value};

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A referenced column name does not exist in the schema.
    UnknownColumn(String),
    /// A value's type does not match the column it is destined for.
    TypeMismatch {
        /// Column the value was destined for.
        column: String,
        /// Type declared in the schema.
        expected: ColumnType,
        /// What was supplied instead.
        got: &'static str,
    },
    /// A row had the wrong number of values for the schema.
    ArityMismatch {
        /// Number of fields in the schema.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// Operation requires a categorical (dictionary-encodable) column.
    NotCategorical(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            StorageError::TypeMismatch { column, expected, got } => {
                write!(f, "type mismatch for column {column}: expected {expected:?}, got {got}")
            }
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "row arity mismatch: schema has {expected} fields, row has {got}")
            }
            StorageError::NotCategorical(name) => {
                write!(f, "column {name} is not categorical (Str or Int64 required)")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience alias used across the storage layer.
pub type Result<T> = std::result::Result<T, StorageError>;
