//! Shared column backing: slices that borrow a refcounted allocation.
//!
//! The snapshot load path views 100+ MB of column data directly inside
//! the snapshot file image instead of copying it out — [`SharedSlice`]
//! is the piece that makes those views safe to hold in long-lived
//! structures: it carries an `Arc` to the owning allocation, so a
//! restored table keeps the snapshot buffer alive exactly as long as any
//! column still references it. [`ColumnBuf`] then lets [`Column`] hold
//! either kind of backing — owned and growable (the build/ingest path)
//! or shared and immutable (the restore path) — behind one `&[T]` view,
//! with copy-on-write promotion if a shared column is ever mutated.
//!
//! [`Column`]: crate::Column

use std::any::Any;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::encoding::{Codable, Encoded, EncodedBuf, RunsView};
use serde::{DeError, Deserialize, Serialize, Value};

/// An immutable `&[T]` view whose backing memory is kept alive by a
/// shared owner. Cloning clones the `Arc`, not the data.
pub struct SharedSlice<T> {
    /// Keeps the backing allocation alive; never read through.
    _owner: Arc<dyn Any + Send + Sync>,
    ptr: *const T,
    len: usize,
}

impl<T> SharedSlice<T> {
    /// View `slice` with its lifetime guaranteed by `owner`.
    ///
    /// # Safety
    ///
    /// `slice` must point into memory owned by `owner`, and that memory
    /// must stay valid, immutable and at the same address for as long as
    /// `owner` (or any clone of it) is alive. In particular the owner
    /// must not be interior-mutable in a way that moves or frees the
    /// viewed range.
    pub unsafe fn new(owner: Arc<dyn Any + Send + Sync>, slice: &[T]) -> Self {
        SharedSlice { _owner: owner, ptr: slice.as_ptr(), len: slice.len() }
    }
}

// Safety: the view is immutable, so sharing/sending it across threads is
// exactly as safe as sharing `&[T]` plus an `Arc` handle.
unsafe impl<T: Send + Sync> Send for SharedSlice<T> {}
unsafe impl<T: Send + Sync> Sync for SharedSlice<T> {}

impl<T> Deref for SharedSlice<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        // Safety: `new`'s contract guarantees ptr/len stay valid while
        // `_owner` is held.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T> Clone for SharedSlice<T> {
    fn clone(&self) -> Self {
        SharedSlice { _owner: Arc::clone(&self._owner), ptr: self.ptr, len: self.len }
    }
}

impl<T: fmt::Debug> fmt::Debug for SharedSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A column's backing store: an owned, growable `Vec<T>` (built data), a
/// [`SharedSlice`] into a refcounted allocation (restored data), or an
/// [`EncodedBuf`] holding an RLE/FOR payload (frozen data under
/// `TABULA_ENCODING`, see [`crate::encoding`]).
///
/// Reads go through `Deref<Target = [T]>`, identical for all variants —
/// an encoded backing materializes its shared decode cache on first
/// dereference, exactly once however many clones exist. Mutation goes
/// through [`ColumnBuf::to_mut`], which promotes a shared view or an
/// encoded payload to an owned copy first — so the backing kind is
/// invisible to correctness and only ever an optimization. Kernels that
/// can run on the encoded form ask for it explicitly via
/// [`ColumnBuf::encoded`] / [`ColumnBuf::runs`] instead of dereferencing.
#[derive(Clone, Debug)]
pub enum ColumnBuf<T: Codable> {
    /// Growable, exclusively owned data.
    Owned(Vec<T>),
    /// Immutable view into a shared allocation.
    Shared(SharedSlice<T>),
    /// RLE/FOR-encoded payload with a lazy shared decode cache.
    Encoded(EncodedBuf<T>),
}

impl<T: Codable> Deref for ColumnBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        match self {
            ColumnBuf::Owned(v) => v,
            ColumnBuf::Shared(s) => s,
            ColumnBuf::Encoded(e) => e.decoded(),
        }
    }
}

impl<T: Codable> ColumnBuf<T> {
    /// Mutable access, promoting a shared view or an encoded payload to
    /// an owned copy first (copy-on-write / decode-on-write).
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        match self {
            ColumnBuf::Shared(s) => *self = ColumnBuf::Owned(s.to_vec()),
            // `decoded()` fills the shared cache (at most one decode per
            // payload, ever); the owned copy then detaches from it.
            ColumnBuf::Encoded(e) => *self = ColumnBuf::Owned(e.decoded().to_vec()),
            ColumnBuf::Owned(_) => {}
        }
        match self {
            ColumnBuf::Owned(v) => v,
            _ => unreachable!("just promoted"),
        }
    }

    /// Spare capacity in rows: shared and encoded backings are not
    /// growable, so they report no headroom beyond their length.
    pub fn capacity(&self) -> usize {
        match self {
            ColumnBuf::Owned(v) => v.capacity(),
            ColumnBuf::Shared(s) => s.len(),
            ColumnBuf::Encoded(e) => e.len(),
        }
    }

    /// Number of rows, without decoding an encoded backing.
    pub fn row_count(&self) -> usize {
        match self {
            ColumnBuf::Owned(v) => v.len(),
            ColumnBuf::Shared(s) => s.len(),
            ColumnBuf::Encoded(e) => e.len(),
        }
    }

    /// The encoded payload, if this buffer holds one.
    #[inline]
    pub fn encoded(&self) -> Option<&Encoded<T>> {
        match self {
            ColumnBuf::Encoded(e) => Some(e.encoded()),
            _ => None,
        }
    }

    /// The RLE runs, if this buffer is run-length encoded.
    #[inline]
    pub fn runs(&self) -> Option<RunsView<'_, T>> {
        self.encoded().and_then(Encoded::runs)
    }

    /// Physical bytes a sequential scan of this buffer touches: the
    /// encoded payload size when encoded, `len * size_of::<T>()` when
    /// plain. (If the decode cache has already materialized, reads go
    /// through the plain cache — callers that dereference should count
    /// plain bytes instead.)
    pub fn physical_bytes(&self) -> usize {
        match self {
            ColumnBuf::Owned(v) => v.len() * std::mem::size_of::<T>(),
            ColumnBuf::Shared(s) => s.len() * std::mem::size_of::<T>(),
            ColumnBuf::Encoded(e) => e.encoded().encoded_bytes(),
        }
    }

    /// Re-encode the buffer for a freeze under `mode`, replacing a plain
    /// backing with an encoded one when [`crate::encoding::choose`]
    /// picks a format. Already-encoded buffers are left untouched so a
    /// thawed snapshot re-freezes byte-identically.
    pub fn encode_in_place(&mut self, mode: crate::encoding::EncodingMode) {
        use crate::encoding::{choose, encode_for, encode_rle, Choice};
        if matches!(self, ColumnBuf::Encoded(_)) {
            return;
        }
        let enc = match choose(self, mode) {
            Choice::Plain => return,
            Choice::Rle => encode_rle(self),
            Choice::For => encode_for(self),
        };
        *self = ColumnBuf::Encoded(EncodedBuf::new(enc));
    }
}

impl<T: Codable> From<Vec<T>> for ColumnBuf<T> {
    fn from(v: Vec<T>) -> Self {
        ColumnBuf::Owned(v)
    }
}

impl<T: Codable> From<SharedSlice<T>> for ColumnBuf<T> {
    fn from(s: SharedSlice<T>) -> Self {
        ColumnBuf::Shared(s)
    }
}

impl<T: Codable> From<EncodedBuf<T>> for ColumnBuf<T> {
    fn from(e: EncodedBuf<T>) -> Self {
        ColumnBuf::Encoded(e)
    }
}

impl<T: Codable> Default for ColumnBuf<T> {
    fn default() -> Self {
        ColumnBuf::Owned(Vec::new())
    }
}

// On the wire a ColumnBuf is indistinguishable from its element sequence
// — shared, encoded and owned backings serialize identically, and
// deserialized data is always owned.
impl<T: Codable + Serialize> Serialize for ColumnBuf<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Codable + Deserialize> Deserialize for ColumnBuf<T> {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        Vec::<T>::from_value(v).map(ColumnBuf::Owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_from(owner: Arc<Vec<u32>>) -> SharedSlice<u32> {
        let slice: &[u32] = &owner;
        // Safety: the slice lives inside the Arc'd Vec, which SharedSlice
        // keeps alive; Vec data never moves after construction.
        unsafe { SharedSlice::new(Arc::clone(&owner) as Arc<dyn Any + Send + Sync>, slice) }
    }

    #[test]
    fn shared_reads_like_a_slice_and_outlives_its_handle() {
        let owner = Arc::new(vec![10u32, 20, 30]);
        let s = shared_from(Arc::clone(&owner));
        drop(owner); // the view keeps the allocation alive on its own
        assert_eq!(&*s, &[10, 20, 30]);
        let s2 = s.clone();
        drop(s);
        assert_eq!(s2[1], 20);
    }

    #[test]
    fn to_mut_promotes_shared_to_owned_copy() {
        let owner = Arc::new(vec![1u32, 2, 3]);
        let mut buf: ColumnBuf<u32> = shared_from(Arc::clone(&owner)).into();
        assert_eq!(buf.capacity(), 3);
        buf.to_mut().push(4);
        assert_eq!(&*buf, &[1, 2, 3, 4]);
        assert_eq!(&*owner, &[1, 2, 3], "promotion must not touch the shared backing");
        assert!(matches!(buf, ColumnBuf::Owned(_)));
    }

    #[test]
    fn encoded_buf_derefs_lazily_and_promotes_on_write() {
        use crate::encoding::{decode_count, encode_rle};
        let data: Vec<u32> = (0..2000).map(|i| i / 100).collect();
        let mut buf: ColumnBuf<u32> = EncodedBuf::new(encode_rle(&data)).into();
        let reader = buf.clone();
        assert_eq!(buf.row_count(), 2000);
        assert!(buf.physical_bytes() < 2000 * 4, "rle payload must be smaller than plain");
        let before = decode_count();
        assert_eq!(&*reader, &data[..]);
        // `to_mut` reuses the clone's cached decode: exactly one decode
        // total across deref + promotion.
        buf.to_mut().push(99);
        assert_eq!(decode_count() - before, 1, "deref + to_mut must share one decode");
        assert_eq!(buf.row_count(), 2001);
        assert_eq!(buf[2000], 99);
        assert!(matches!(buf, ColumnBuf::Owned(_)));
        // The encoded clone is untouched by the promotion.
        assert_eq!(reader.row_count(), 2000);
        assert!(matches!(reader, ColumnBuf::Encoded(_)));
    }

    #[test]
    fn serde_round_trips_encoded_as_owned() {
        use crate::encoding::encode_for;
        let data = vec![100i64, 101, 102, 101];
        let buf: ColumnBuf<i64> = EncodedBuf::new(encode_for(&data)).into();
        let json = serde_json::to_string(&buf).unwrap();
        assert_eq!(json, "[100,101,102,101]");
        let back: ColumnBuf<i64> = serde_json::from_str(&json).unwrap();
        assert!(matches!(back, ColumnBuf::Owned(_)));
        assert_eq!(&*back, &data[..]);
    }

    #[test]
    fn serde_round_trips_shared_as_owned() {
        let owner = Arc::new(vec![7u32, 8]);
        let buf: ColumnBuf<u32> = shared_from(owner).into();
        let json = serde_json::to_string(&buf).unwrap();
        assert_eq!(json, "[7,8]");
        let back: ColumnBuf<u32> = serde_json::from_str(&json).unwrap();
        assert!(matches!(back, ColumnBuf::Owned(_)));
        assert_eq!(&*back, &*buf);
    }
}
