//! Vendored, std-only stand-in for `serde_json`, paired with the vendored
//! `serde` shim: serializes any `serde::Serialize` into JSON text and
//! parses JSON text back into any `serde::Deserialize`.
//!
//! Floats are printed with Rust's shortest-round-trip formatting, so
//! `to_string` → `from_str` preserves every finite `f64` bit-exactly.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};
use std::fmt::Write as _;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching real serde_json's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to pretty-printed JSON (two-space indents).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize `value` as JSON into an `io::Write`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(|e| Error(e.to_string()))
}

/// Parse JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------- writing

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !map.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a `.0` so the parser round-trips it back to Float.
        let _ = write!(out, "{f:.1}");
    } else if f == f.trunc() {
        // Huge integral floats would print as bare digit strings (Rust's
        // `{}` never uses exponent form) and re-parse as Int — or overflow
        // it. Scientific notation keeps them floats and round-trips.
        let _ = write!(out, "{f:e}");
    } else {
        // Rust's shortest-round-trip float formatting.
        let _ = write!(out, "{f}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

/// Parse a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'s> Parser<'s> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-scan the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error("bad surrogate pair".into()))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| Error("bad \\u escape".into()))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| Error(e.to_string()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|e| Error(e.to_string()))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else {
            // Digit strings wider than i128 (e.g. from other JSON writers
            // printing huge floats in full) degrade to Float, as real
            // serde_json's arbitrary-precision-off mode does.
            text.parse::<i128>().map(Value::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|e| Error(format!("bad number {text:?}: {e}")))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips() {
        let src = r#"{"a": [1, 2.5, -3], "b": null, "c": "x\"y\n", "d": {"e": true}}"#;
        let v = parse_value(src).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0, 12345.0] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {json}");
        }
    }

    #[test]
    fn integers_keep_exactness() {
        let big = i64::MAX;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<i64>(&json).unwrap(), big);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value(r#""é😀""#).unwrap();
        assert_eq!(v, Value::Str("é😀".to_owned()));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("tru").is_err());
        assert!(parse_value("1 2").is_err());
    }
}
