//! [`SnapshotWriter`]: builds the snapshot byte stream in memory, then
//! writes it in one `write_all`. Snapshots are immutable — there is no
//! append or in-place update path, a new generation is a new file.

use std::path::Path;
use std::time::Instant;

use crate::checksum::crc64;
use crate::format::{BlockDesc, Manifest, FOOTER_LEN, FORMAT_VERSION, HEADER_LEN, MAGIC};
use crate::{Result, StoreError, STORE_BYTES, STORE_WRITE_NS};

/// Accumulates blocks and emits the final header/blocks/manifest/footer
/// byte stream.
pub struct SnapshotWriter {
    version: u32,
    epoch: u64,
    meta: String,
    buf: Vec<u8>,
    blocks: Vec<BlockDesc>,
}

impl SnapshotWriter {
    /// Start a snapshot at the current [`FORMAT_VERSION`].
    pub fn new() -> Self {
        Self::with_version(FORMAT_VERSION)
    }

    /// Start a snapshot claiming an arbitrary format version. Exists so
    /// the corruption tests can author a structurally valid file from a
    /// past (or future) version and prove the reader rejects it; the
    /// production path always uses [`SnapshotWriter::new`].
    pub fn with_version(version: u32) -> Self {
        let mut buf = Vec::with_capacity(64 * 1024);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&version.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // reserved
        SnapshotWriter { version, epoch: 0, meta: String::new(), buf, blocks: Vec::new() }
    }

    /// Stamp the serving-generation epoch into the manifest.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Attach the writer-defined meta payload (a JSON string for cube
    /// snapshots; the store layer treats it as opaque).
    pub fn set_meta(&mut self, meta: String) {
        self.meta = meta;
    }

    /// Append one block. The payload is checksummed and padded to the
    /// next 8-byte boundary so the reader's typed views stay aligned.
    /// Duplicate names are a writer bug and rejected immediately.
    pub fn add_block(&mut self, name: &str, rows: u64, payload: &[u8]) -> Result<()> {
        if self.blocks.iter().any(|b| b.name == name) {
            return Err(StoreError::BadBlock {
                region: format!("block:{name}"),
                reason: "duplicate block name".to_string(),
            });
        }
        debug_assert_eq!(self.buf.len() % 8, 0);
        let desc = BlockDesc {
            name: name.to_string(),
            offset: self.buf.len() as u64,
            len: payload.len() as u64,
            rows,
            crc64: crc64(payload),
        };
        self.buf.extend_from_slice(payload);
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
        self.blocks.push(desc);
        Ok(())
    }

    /// Seal the snapshot: append the manifest and footer and return the
    /// complete file image.
    pub fn finish(self) -> Result<Vec<u8>> {
        let SnapshotWriter { version, epoch, meta, mut buf, blocks } = self;
        let manifest = Manifest {
            format_version: version,
            epoch,
            producer: format!("tabula-store/{}", env!("CARGO_PKG_VERSION")),
            meta,
            blocks,
        };
        let manifest_json = serde_json::to_string(&manifest)
            .map_err(|e| StoreError::CorruptManifest(format!("serialize failed: {e}")))?;
        let manifest_offset = buf.len() as u64;
        let manifest_bytes = manifest_json.as_bytes();
        buf.extend_from_slice(manifest_bytes);
        // The file CRC covers header + blocks + manifest; the footer's
        // own fields are each independently validated by the reader.
        let file_crc = crc64(&buf);
        buf.extend_from_slice(&manifest_offset.to_le_bytes());
        buf.extend_from_slice(&(manifest_bytes.len() as u64).to_le_bytes());
        buf.extend_from_slice(&crc64(manifest_bytes).to_le_bytes());
        buf.extend_from_slice(&file_crc.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // reserved
        buf.extend_from_slice(&MAGIC);
        debug_assert!(buf.len() as u64 >= HEADER_LEN + FOOTER_LEN);
        Ok(buf)
    }

    /// Seal the snapshot and write it to `path` (via a same-directory
    /// temporary so a crash mid-write never leaves a half snapshot under
    /// the final name). The temporary is fsynced before the rename — the
    /// rename must never publish a name whose bytes are still only in the
    /// page cache, and flushing here also keeps writeback from competing
    /// with an immediately following load of the same file. Returns the
    /// byte count; records `store.write_ns` and `store.bytes`.
    pub fn write_to(self, path: &Path) -> Result<u64> {
        let start = Instant::now();
        let bytes = self.finish()?;
        let tmp = path.with_extension("tmp-tabsnap");
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        let reg = tabula_obs::global();
        reg.histogram(STORE_WRITE_NS).record_duration(start.elapsed());
        reg.counter(STORE_BYTES).add(bytes.len() as u64);
        Ok(bytes.len() as u64)
    }
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        Self::new()
    }
}
