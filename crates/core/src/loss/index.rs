//! Nearest-neighbour indexes used by the visualization-aware loss
//! functions: a uniform grid for 2-D points and a sorted array for 1-D
//! values. Both answer exact nearest-neighbour distance queries; they only
//! accelerate, never approximate.

use tabula_storage::Point;

/// Exact nearest-neighbour index over a fixed set of 2-D points, backed by
/// a uniform grid sized to the point count.
#[derive(Debug, Clone)]
pub struct GridIndex {
    points: Vec<Point>,
    /// Grid origin (min corner of the bounding box).
    ox: f64,
    oy: f64,
    /// Cell side length.
    cell: f64,
    /// Grid dimensions.
    nx: usize,
    ny: usize,
    /// Point indices per grid cell, row-major.
    buckets: Vec<Vec<u32>>,
}

impl GridIndex {
    /// Build an index over `points`. An empty set is allowed; queries then
    /// return `f64::INFINITY`.
    pub fn build(points: Vec<Point>) -> Self {
        if points.is_empty() {
            return GridIndex {
                points,
                ox: 0.0,
                oy: 0.0,
                cell: 1.0,
                nx: 0,
                ny: 0,
                buckets: Vec::new(),
            };
        }
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let extent = (max_x - min_x).max(max_y - min_y).max(1e-12);
        // Aim for ~1 point per bucket: grid side ≈ √n.
        let side = (points.len() as f64).sqrt().ceil().max(1.0) as usize;
        let cell = extent / side as f64;
        let nx = (((max_x - min_x) / cell).floor() as usize + 1).max(1);
        let ny = (((max_y - min_y) / cell).floor() as usize + 1).max(1);
        let mut buckets = vec![Vec::new(); nx * ny];
        for (i, p) in points.iter().enumerate() {
            let bx = (((p.x - min_x) / cell).floor() as usize).min(nx - 1);
            let by = (((p.y - min_y) / cell).floor() as usize).min(ny - 1);
            buckets[by * nx + bx].push(i as u32);
        }
        GridIndex { points, ox: min_x, oy: min_y, cell, nx, ny, buckets }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Exact Manhattan (L1) distance from `q` to its nearest-under-L1
    /// indexed point; `INFINITY` if the index is empty.
    ///
    /// Ring pruning reuses the Euclidean lower bound, which is valid for
    /// L1 because `L1(a, b) ≥ L2(a, b)` always.
    pub fn nearest_dist_manhattan(&self, q: &Point) -> f64 {
        if self.points.is_empty() {
            return f64::INFINITY;
        }
        let (cx, cy) = self.anchor_cell(q);
        let mut best = f64::INFINITY;
        let max_ring = self.nx.max(self.ny) as isize;
        for ring in 0..=max_ring {
            if best.is_finite() && self.ring_lower_bound(q, cx, cy, ring) > best {
                break;
            }
            self.scan_ring_metric(q, cx, cy, ring, &mut best, true);
        }
        best
    }

    /// Exact Euclidean distance from `q` to its nearest indexed point;
    /// `INFINITY` if the index is empty.
    pub fn nearest_dist(&self, q: &Point) -> f64 {
        if self.points.is_empty() {
            return f64::INFINITY;
        }
        // Expanding ring search: examine rings of grid cells around the
        // query's cell; stop when the nearest possible point in the next
        // ring is farther than the best found.
        let (cx, cy) = self.anchor_cell(q);
        let mut best_sq = f64::INFINITY;
        let max_ring = self.nx.max(self.ny) as isize;
        for ring in 0..=max_ring {
            // Once something is found, rings beyond best/cell can't help.
            if best_sq.is_finite() {
                // Lower bound on distance to any cell in this ring. The
                // query point may lie outside the grid, so measure from the
                // query to the ring's bounding square in grid space.
                let ring_lb = self.ring_lower_bound(q, cx, cy, ring);
                if ring_lb * ring_lb > best_sq {
                    break;
                }
            }
            self.scan_ring(q, cx, cy, ring, &mut best_sq);
        }
        best_sq.sqrt()
    }

    /// Lowest possible distance from `q` to any point lying in a cell of
    /// ring `ring` (cells at Chebyshev grid distance exactly `ring` from
    /// `(cx, cy)`).
    fn ring_lower_bound(&self, q: &Point, cx: isize, cy: isize, ring: isize) -> f64 {
        if ring == 0 {
            return 0.0;
        }
        // Every cell of the ring lies outside the "inner box" of cells at
        // Chebyshev distance ≤ ring−1, so the distance from q to the
        // complement of that box bounds the ring from below.
        let inner_lo_x = self.ox + (cx - (ring - 1)) as f64 * self.cell;
        let inner_hi_x = self.ox + (cx + ring) as f64 * self.cell;
        let inner_lo_y = self.oy + (cy - (ring - 1)) as f64 * self.cell;
        let inner_hi_y = self.oy + (cy + ring) as f64 * self.cell;
        let inside_x = q.x >= inner_lo_x && q.x <= inner_hi_x;
        let inside_y = q.y >= inner_lo_y && q.y <= inner_hi_y;
        if !(inside_x && inside_y) {
            // q is outside the inner box: the ring shell may touch it.
            return 0.0;
        }
        // q is inside: it must travel to the nearest face of the box.
        (q.x - inner_lo_x)
            .min(inner_hi_x - q.x)
            .min(q.y - inner_lo_y)
            .min(inner_hi_y - q.y)
            .max(0.0)
    }

    /// Grid cell the query anchors to (clamped into the grid).
    fn anchor_cell(&self, q: &Point) -> (isize, isize) {
        let qx = ((q.x - self.ox) / self.cell).floor();
        let qy = ((q.y - self.oy) / self.cell).floor();
        (qx.clamp(0.0, (self.nx - 1) as f64) as isize, qy.clamp(0.0, (self.ny - 1) as f64) as isize)
    }

    /// Ring scan tracking a plain (non-squared) best distance under either
    /// metric.
    fn scan_ring_metric(
        &self,
        q: &Point,
        cx: isize,
        cy: isize,
        ring: isize,
        best: &mut f64,
        manhattan: bool,
    ) {
        let mut visit = |bx: isize, by: isize| {
            if bx < 0 || by < 0 || bx >= self.nx as isize || by >= self.ny as isize {
                return;
            }
            for &i in &self.buckets[by as usize * self.nx + bx as usize] {
                let p = &self.points[i as usize];
                let d = if manhattan { q.manhattan(p) } else { q.euclidean(p) };
                if d < *best {
                    *best = d;
                }
            }
        };
        if ring == 0 {
            visit(cx, cy);
            return;
        }
        let (x0, x1, y0, y1) = (cx - ring, cx + ring, cy - ring, cy + ring);
        for bx in x0..=x1 {
            visit(bx, y0);
            visit(bx, y1);
        }
        for by in (y0 + 1)..y1 {
            visit(x0, by);
            visit(x1, by);
        }
    }

    fn scan_ring(&self, q: &Point, cx: isize, cy: isize, ring: isize, best_sq: &mut f64) {
        let x0 = cx - ring;
        let x1 = cx + ring;
        let y0 = cy - ring;
        let y1 = cy + ring;
        let mut visit = |bx: isize, by: isize| {
            if bx < 0 || by < 0 || bx >= self.nx as isize || by >= self.ny as isize {
                return;
            }
            for &i in &self.buckets[by as usize * self.nx + bx as usize] {
                let d = q.euclidean_sq(&self.points[i as usize]);
                if d < *best_sq {
                    *best_sq = d;
                }
            }
        };
        if ring == 0 {
            visit(cx, cy);
            return;
        }
        for bx in x0..=x1 {
            visit(bx, y0);
            visit(bx, y1);
        }
        for by in (y0 + 1)..y1 {
            visit(x0, by);
            visit(x1, by);
        }
    }
}

/// Exact nearest-neighbour index over a fixed multiset of 1-D values.
#[derive(Debug, Clone)]
pub struct Sorted1D {
    values: Vec<f64>,
}

impl Sorted1D {
    /// Build from values (NaNs are rejected by debug assertion).
    pub fn build(mut values: Vec<f64>) -> Self {
        debug_assert!(values.iter().all(|v| !v.is_nan()));
        values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Sorted1D { values }
    }

    /// Number of indexed values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sorted values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Exact distance from `q` to the nearest indexed value; `INFINITY`
    /// if empty.
    pub fn nearest_dist(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return f64::INFINITY;
        }
        let idx = self.values.partition_point(|&v| v < q);
        let mut best = f64::INFINITY;
        if idx < self.values.len() {
            best = best.min((self.values[idx] - q).abs());
        }
        if idx > 0 {
            best = best.min((q - self.values[idx - 1]).abs());
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn brute_nearest(points: &[Point], q: &Point) -> f64 {
        points.iter().map(|p| p.euclidean(q)).fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn empty_index_returns_infinity() {
        let g = GridIndex::build(Vec::new());
        assert_eq!(g.nearest_dist(&Point::new(0.5, 0.5)), f64::INFINITY);
        let s = Sorted1D::build(Vec::new());
        assert_eq!(s.nearest_dist(1.0), f64::INFINITY);
    }

    #[test]
    fn grid_matches_brute_force_on_random_data() {
        let mut rng = SmallRng::seed_from_u64(11);
        let points: Vec<Point> = (0..500)
            .map(|_| Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect();
        let g = GridIndex::build(points.clone());
        for _ in 0..500 {
            // Queries both inside and outside the indexed bounding box.
            let q = Point::new(rng.gen_range(-0.3..1.3), rng.gen_range(-0.3..1.3));
            let fast = g.nearest_dist(&q);
            let brute = brute_nearest(&points, &q);
            assert!(
                (fast - brute).abs() < 1e-12,
                "mismatch at ({}, {}): grid {fast} vs brute {brute}",
                q.x,
                q.y
            );
        }
    }

    #[test]
    fn grid_handles_clustered_data() {
        let mut rng = SmallRng::seed_from_u64(5);
        // Two tight clusters far apart — stresses ring termination.
        let mut points = Vec::new();
        for _ in 0..200 {
            points.push(Point::new(
                0.1 + rng.gen_range(-0.001..0.001),
                0.1 + rng.gen_range(-0.001..0.001),
            ));
            points.push(Point::new(
                0.9 + rng.gen_range(-0.001..0.001),
                0.9 + rng.gen_range(-0.001..0.001),
            ));
        }
        let g = GridIndex::build(points.clone());
        for _ in 0..200 {
            let q = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            assert!((g.nearest_dist(&q) - brute_nearest(&points, &q)).abs() < 1e-12);
        }
    }

    #[test]
    fn grid_single_point() {
        let g = GridIndex::build(vec![Point::new(0.3, 0.7)]);
        assert!((g.nearest_dist(&Point::new(0.3, 0.7)) - 0.0).abs() < 1e-15);
        assert!((g.nearest_dist(&Point::new(0.3, 0.2)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn grid_identical_points() {
        let g = GridIndex::build(vec![Point::new(0.5, 0.5); 100]);
        assert_eq!(g.nearest_dist(&Point::new(0.5, 0.5)), 0.0);
        assert!((g.nearest_dist(&Point::new(1.5, 0.5)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(21);
        let points: Vec<Point> = (0..400)
            .map(|_| Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect();
        let g = GridIndex::build(points.clone());
        for _ in 0..400 {
            let q = Point::new(rng.gen_range(-0.2..1.2), rng.gen_range(-0.2..1.2));
            let brute = points.iter().map(|p| p.manhattan(&q)).fold(f64::INFINITY, f64::min);
            assert!((g.nearest_dist_manhattan(&q) - brute).abs() < 1e-12);
        }
    }

    #[test]
    fn sorted1d_matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(3);
        let values: Vec<f64> = (0..300).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let s = Sorted1D::build(values.clone());
        for _ in 0..300 {
            let q = rng.gen_range(-12.0..12.0);
            let brute = values.iter().map(|v| (v - q).abs()).fold(f64::INFINITY, f64::min);
            assert!((s.nearest_dist(q) - brute).abs() < 1e-12);
        }
    }

    #[test]
    fn sorted1d_boundaries() {
        let s = Sorted1D::build(vec![1.0, 5.0, 9.0]);
        assert_eq!(s.nearest_dist(0.0), 1.0);
        assert_eq!(s.nearest_dist(10.0), 1.0);
        assert_eq!(s.nearest_dist(5.0), 0.0);
        assert!((s.nearest_dist(6.9) - 1.9).abs() < 1e-12);
    }
}
