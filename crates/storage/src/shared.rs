//! Shared column backing: slices that borrow a refcounted allocation.
//!
//! The snapshot load path views 100+ MB of column data directly inside
//! the snapshot file image instead of copying it out — [`SharedSlice`]
//! is the piece that makes those views safe to hold in long-lived
//! structures: it carries an `Arc` to the owning allocation, so a
//! restored table keeps the snapshot buffer alive exactly as long as any
//! column still references it. [`ColumnBuf`] then lets [`Column`] hold
//! either kind of backing — owned and growable (the build/ingest path)
//! or shared and immutable (the restore path) — behind one `&[T]` view,
//! with copy-on-write promotion if a shared column is ever mutated.
//!
//! [`Column`]: crate::Column

use std::any::Any;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use serde::{DeError, Deserialize, Serialize, Value};

/// An immutable `&[T]` view whose backing memory is kept alive by a
/// shared owner. Cloning clones the `Arc`, not the data.
pub struct SharedSlice<T> {
    /// Keeps the backing allocation alive; never read through.
    _owner: Arc<dyn Any + Send + Sync>,
    ptr: *const T,
    len: usize,
}

impl<T> SharedSlice<T> {
    /// View `slice` with its lifetime guaranteed by `owner`.
    ///
    /// # Safety
    ///
    /// `slice` must point into memory owned by `owner`, and that memory
    /// must stay valid, immutable and at the same address for as long as
    /// `owner` (or any clone of it) is alive. In particular the owner
    /// must not be interior-mutable in a way that moves or frees the
    /// viewed range.
    pub unsafe fn new(owner: Arc<dyn Any + Send + Sync>, slice: &[T]) -> Self {
        SharedSlice { _owner: owner, ptr: slice.as_ptr(), len: slice.len() }
    }
}

// Safety: the view is immutable, so sharing/sending it across threads is
// exactly as safe as sharing `&[T]` plus an `Arc` handle.
unsafe impl<T: Send + Sync> Send for SharedSlice<T> {}
unsafe impl<T: Send + Sync> Sync for SharedSlice<T> {}

impl<T> Deref for SharedSlice<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        // Safety: `new`'s contract guarantees ptr/len stay valid while
        // `_owner` is held.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T> Clone for SharedSlice<T> {
    fn clone(&self) -> Self {
        SharedSlice { _owner: Arc::clone(&self._owner), ptr: self.ptr, len: self.len }
    }
}

impl<T: fmt::Debug> fmt::Debug for SharedSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A column's backing store: an owned, growable `Vec<T>` (built data) or
/// a [`SharedSlice`] into a refcounted allocation (restored data).
///
/// Reads go through `Deref<Target = [T]>`, identical for both variants.
/// Mutation goes through [`ColumnBuf::to_mut`], which promotes a shared
/// view to an owned copy first — so sharing is invisible to correctness
/// and only ever an optimization.
#[derive(Clone, Debug)]
pub enum ColumnBuf<T> {
    /// Growable, exclusively owned data.
    Owned(Vec<T>),
    /// Immutable view into a shared allocation.
    Shared(SharedSlice<T>),
}

impl<T> Deref for ColumnBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        match self {
            ColumnBuf::Owned(v) => v,
            ColumnBuf::Shared(s) => s,
        }
    }
}

impl<T: Clone> ColumnBuf<T> {
    /// Mutable access, promoting a shared view to an owned copy first
    /// (copy-on-write).
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let ColumnBuf::Shared(s) = self {
            *self = ColumnBuf::Owned(s.to_vec());
        }
        match self {
            ColumnBuf::Owned(v) => v,
            ColumnBuf::Shared(_) => unreachable!("just promoted"),
        }
    }
}

impl<T> ColumnBuf<T> {
    /// Spare capacity in rows: a shared view is not growable, so it
    /// reports no headroom beyond its length.
    pub fn capacity(&self) -> usize {
        match self {
            ColumnBuf::Owned(v) => v.capacity(),
            ColumnBuf::Shared(s) => s.len(),
        }
    }
}

impl<T> From<Vec<T>> for ColumnBuf<T> {
    fn from(v: Vec<T>) -> Self {
        ColumnBuf::Owned(v)
    }
}

impl<T> From<SharedSlice<T>> for ColumnBuf<T> {
    fn from(s: SharedSlice<T>) -> Self {
        ColumnBuf::Shared(s)
    }
}

impl<T> Default for ColumnBuf<T> {
    fn default() -> Self {
        ColumnBuf::Owned(Vec::new())
    }
}

// On the wire a ColumnBuf is indistinguishable from its element sequence
// — shared and owned backings serialize identically, and deserialized
// data is always owned.
impl<T: Serialize> Serialize for ColumnBuf<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for ColumnBuf<T> {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        Vec::<T>::from_value(v).map(ColumnBuf::Owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_from(owner: Arc<Vec<u32>>) -> SharedSlice<u32> {
        let slice: &[u32] = &owner;
        // Safety: the slice lives inside the Arc'd Vec, which SharedSlice
        // keeps alive; Vec data never moves after construction.
        unsafe { SharedSlice::new(Arc::clone(&owner) as Arc<dyn Any + Send + Sync>, slice) }
    }

    #[test]
    fn shared_reads_like_a_slice_and_outlives_its_handle() {
        let owner = Arc::new(vec![10u32, 20, 30]);
        let s = shared_from(Arc::clone(&owner));
        drop(owner); // the view keeps the allocation alive on its own
        assert_eq!(&*s, &[10, 20, 30]);
        let s2 = s.clone();
        drop(s);
        assert_eq!(s2[1], 20);
    }

    #[test]
    fn to_mut_promotes_shared_to_owned_copy() {
        let owner = Arc::new(vec![1u32, 2, 3]);
        let mut buf: ColumnBuf<u32> = shared_from(Arc::clone(&owner)).into();
        assert_eq!(buf.capacity(), 3);
        buf.to_mut().push(4);
        assert_eq!(&*buf, &[1, 2, 3, 4]);
        assert_eq!(&*owner, &[1, 2, 3], "promotion must not touch the shared backing");
        assert!(matches!(buf, ColumnBuf::Owned(_)));
    }

    #[test]
    fn serde_round_trips_shared_as_owned() {
        let owner = Arc::new(vec![7u32, 8]);
        let buf: ColumnBuf<u32> = shared_from(owner).into();
        let json = serde_json::to_string(&buf).unwrap();
        assert_eq!(json, "[7,8]");
        let back: ColumnBuf<u32> = serde_json::from_str(&json).unwrap();
        assert!(matches!(back, ColumnBuf::Owned(_)));
        assert_eq!(&*back, &*buf);
    }
}
