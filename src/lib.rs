//! # Tabula
//!
//! Facade crate re-exporting the whole Tabula workspace. See the README for
//! a guided tour; the sub-crates are:
//!
//! * [`storage`] — in-memory columnar engine (the "data system" substrate),
//! * [`data`] — synthetic NYC-taxi generator and query workloads,
//! * [`core`] — the paper's contribution: the materialized sampling cube,
//! * [`sql`] — the SQL dialect front-end,
//! * [`viz`] — visualization substrate (heat maps, histograms, regression),
//! * [`baselines`] — the eight compared approaches of the paper's Section V,
//! * [`obs`] — zero-dependency tracing, metrics and provenance counters.

pub use tabula_baselines as baselines;
pub use tabula_core as core;
pub use tabula_data as data;
pub use tabula_ingest as ingest;
pub use tabula_obs as obs;
pub use tabula_serve as serve;
pub use tabula_sql as sql;
pub use tabula_storage as storage;
pub use tabula_store as store;
pub use tabula_viz as viz;
