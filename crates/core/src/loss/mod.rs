//! User-defined accuracy loss functions.
//!
//! A loss function quantifies how much a visual-analytics result computed
//! on a *sample* deviates from the result computed on the *raw* query
//! answer. Tabula is generic over the loss: the user declares one
//! ([`AccuracyLoss`]) and the middleware embeds it in cube initialization,
//! greedy sampling and representative-sample selection.
//!
//! ## The algebraic contract
//!
//! The paper requires the loss to be **algebraic**: the loss of a cube
//! cell against a *fixed* sample must be computable from a bounded-size,
//! mergeable per-cell state. That contract is split here into:
//!
//! * [`AccuracyLoss::State`] — a mergeable [`AggState`] folded from raw
//!   rows ([`AccuracyLoss::fold`]),
//! * [`AccuracyLoss::SampleCtx`] — a prepared view of the fixed sample
//!   (e.g. a nearest-neighbour index over its points),
//! * [`AccuracyLoss::finish`] — the loss from `(state, ctx)`.
//!
//! For the visualization losses (heat map / histogram) the per-row state
//! contribution is the row's minimum distance *to the fixed sample*, so
//! the state depends on the sample ([`AccuracyLoss::state_depends_on_sample`]
//! returns `true`); for mean/regression the state summarizes raw data only
//! and can be reused against any sample — the dry run and the SamGraph
//! join exploit this distinction.
//!
//! ## Built-ins (the paper's Functions 1–3 plus the histogram variant)
//!
//! * [`MeanLoss`] — relative error of the statistical mean,
//! * [`HeatmapLoss`] — average minimum distance between raw points and
//!   sample points (VAS / POIsam-style visualization-aware loss),
//! * [`RegressionLoss`] — angle difference between OLS regression lines,
//! * [`HistogramLoss`] — 1-D average minimum distance.

pub mod combined;
pub mod expr;
pub mod heatmap;
pub mod histogram;
pub mod index;
pub mod mean;
pub mod regression;

pub use combined::MaxLoss;
pub use expr::ExprLoss;
pub use heatmap::{HeatmapLoss, Metric};
pub use histogram::HistogramLoss;
pub use index::{GridIndex, Sorted1D};
pub use mean::MeanLoss;
pub use regression::RegressionLoss;

use tabula_storage::{AggState, RowId, Table};

/// Denominator guard for relative-error losses.
pub(crate) const REL_EPS: f64 = 1e-12;

/// Float slack absorbed when a loss value is compared against θ.
///
/// The same cell's loss is computed along two different float paths: the
/// dry run folds rows into mergeable states and merges them down the
/// lattice, while verification (tests, the differential oracle) re-sums
/// the raw rows directly. The two paths round differently, so an exact
/// `loss > θ` comparison could classify a borderline cell one way and
/// check it the other. Both sides therefore share this constant:
///
/// * the classifiers ([`exceeds_theta`], used by the dry run and the
///   naive PartSamCube path) treat any loss above `θ − LOSS_EPS` as
///   iceberg — borderline cells are *materialized*, never left to the
///   global sample;
/// * correctness checks accept `loss ≤ θ + LOSS_EPS`.
///
/// With both rules in place, a divergence below `LOSS_EPS` between the
/// algebraic and the direct evaluation can never produce a spurious
/// guarantee violation, and the tolerance cannot drift apart from the
/// classifier because there is only one constant.
pub const LOSS_EPS: f64 = 1e-9;

/// The classifier predicate shared by the dry run and the naive
/// PartSamCube path: whether a cell with this loss against the global
/// sample must be materialized. Conservative by [`LOSS_EPS`]: borderline
/// cells count as iceberg.
#[inline]
pub fn exceeds_theta(loss: f64, theta: f64) -> bool {
    loss > theta - LOSS_EPS
}

/// A user-defined accuracy loss function. See the module docs for the
/// contract; see `MeanLoss` for the simplest reference implementation.
pub trait AccuracyLoss: Send + Sync + 'static {
    /// Mergeable per-cell state folded from raw rows.
    type State: AggState + Default + 'static;
    /// Prepared view of a fixed sample (indexes, aggregates, ...).
    type SampleCtx: Send + Sync;

    /// Short name for diagnostics and harness output.
    fn name(&self) -> &'static str;

    /// Whether [`AccuracyLoss::fold`] reads the sample context. When
    /// `false`, a folded state cube can be re-evaluated against *different*
    /// samples with [`AccuracyLoss::finish`] alone — the SamGraph join
    /// uses this to price candidate representatives in O(1) per pair.
    fn state_depends_on_sample(&self) -> bool;

    /// Prepare the reusable context for a fixed sample (row ids of
    /// `table`).
    fn prepare(&self, table: &Table, sample: &[RowId]) -> Self::SampleCtx;

    /// Fold one raw row into `state`.
    fn fold(&self, ctx: &Self::SampleCtx, state: &mut Self::State, table: &Table, row: RowId);

    /// The loss of using `ctx`'s sample in place of the raw data
    /// summarized by `state`. Empty raw data must yield `0.0`; a sample
    /// unable to represent non-empty raw data (e.g. an empty sample) must
    /// yield `f64::INFINITY`.
    fn finish(&self, ctx: &Self::SampleCtx, state: &Self::State) -> f64;

    /// Exact loss of using `sample` in place of `raw`.
    fn loss(&self, table: &Table, raw: &[RowId], sample: &[RowId]) -> f64 {
        let ctx = self.prepare(table, sample);
        self.loss_with_ctx(table, raw, &ctx)
    }

    /// Exact loss against an already-prepared sample context.
    fn loss_with_ctx(&self, table: &Table, raw: &[RowId], ctx: &Self::SampleCtx) -> f64 {
        let mut state = Self::State::default();
        for &r in raw {
            self.fold(ctx, &mut state, table, r);
        }
        self.finish(ctx, &state)
    }

    /// Exact loss against `ctx`, abandoning the computation as soon as the
    /// result provably exceeds `bound`. Returns `Some(loss)` when
    /// `loss ≤ bound`, `None` otherwise. The default computes fully;
    /// per-row-decomposable losses override with an early exit — the
    /// SamGraph join's hot path.
    fn loss_within(
        &self,
        table: &Table,
        raw: &[RowId],
        ctx: &Self::SampleCtx,
        bound: f64,
    ) -> Option<f64> {
        let loss = self.loss_with_ctx(table, raw, ctx);
        (loss <= bound).then_some(loss)
    }

    /// A low-dimensional signature of a row set, used ONLY to order
    /// candidate representatives in the SamGraph join — a pruning
    /// heuristic whose quality affects memory savings, never correctness.
    /// The default (a constant) disables the ordering.
    fn signature(&self, table: &Table, rows: &[RowId]) -> [f64; 2] {
        let _ = (table, rows);
        [0.0, 0.0]
    }

    /// The paper's Algorithm 1: greedily pick rows of `raw` (without
    /// replacement) until `loss(raw, picked) ≤ theta`. Termination is
    /// guaranteed because the loop can at worst pick every row, and
    /// `loss(raw, raw) = 0` for any well-formed loss.
    ///
    /// The default is the literal O(|raw|²·cost(loss)) greedy of the
    /// paper's pseudocode — correct for any loss, affordable only for
    /// small cells. Built-ins override it with incremental engines (see
    /// [`crate::sampling`]).
    fn sample_greedy(&self, table: &Table, raw: &[RowId], theta: f64) -> Vec<RowId> {
        crate::sampling::naive_greedy(self, table, raw, theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_data::example_dcm_table;

    /// Shared contract checks run against every built-in loss.
    fn check_contract<L: AccuracyLoss>(loss: &L, table: &Table) {
        let all: Vec<RowId> = table.all_rows();
        // Empty raw data ⇒ zero loss, regardless of the sample.
        assert_eq!(loss.loss(table, &[], &all), 0.0, "{}: empty raw", loss.name());
        // Non-empty raw vs empty sample ⇒ infinite loss.
        assert!(loss.loss(table, &all, &[]).is_infinite(), "{}: empty sample", loss.name());
        // Perfect sample ⇒ (near) zero loss.
        let perfect = loss.loss(table, &all, &all);
        assert!(perfect.abs() < 1e-9, "{}: loss(raw, raw) = {perfect}", loss.name());
        // loss_within agrees with loss.
        let sample = &all[..all.len() / 2];
        let ctx = loss.prepare(table, sample);
        let exact = loss.loss(table, &all, sample);
        if exact.is_finite() {
            let within = loss.loss_within(table, &all, &ctx, exact + 1e-9);
            assert!(within.is_some(), "{}: loss_within at bound", loss.name());
            assert!((within.unwrap() - exact).abs() < 1e-9, "{}", loss.name());
            assert!(
                loss.loss_within(table, &all, &ctx, exact / 2.0 - 1e-9).is_none() || exact == 0.0,
                "{}: loss_within below bound",
                loss.name()
            );
        }
    }

    #[test]
    fn all_builtins_satisfy_the_contract() {
        let t = example_dcm_table();
        let fare = t.schema().index_of("fare").unwrap();
        let tip = t.schema().index_of("tip").unwrap();
        let pickup = t.schema().index_of("pickup").unwrap();
        check_contract(&MeanLoss::new(fare), &t);
        check_contract(&HeatmapLoss::new(pickup, Metric::Euclidean), &t);
        check_contract(&HeatmapLoss::new(pickup, Metric::Manhattan), &t);
        check_contract(&HistogramLoss::new(fare), &t);
        check_contract(&RegressionLoss::new(fare, tip), &t);
    }

    #[test]
    fn greedy_guarantee_holds_for_all_builtins() {
        let t = example_dcm_table();
        let fare = t.schema().index_of("fare").unwrap();
        let tip = t.schema().index_of("tip").unwrap();
        let pickup = t.schema().index_of("pickup").unwrap();
        let all: Vec<RowId> = t.all_rows();

        fn check<L: AccuracyLoss>(loss: &L, t: &Table, raw: &[RowId], theta: f64) {
            let sample = loss.sample_greedy(t, raw, theta);
            assert!(!sample.is_empty());
            let achieved = loss.loss(t, raw, &sample);
            assert!(achieved <= theta + 1e-12, "{}: achieved {achieved} > θ {theta}", loss.name());
            // Sampling is without replacement.
            let mut seen = std::collections::HashSet::new();
            assert!(sample.iter().all(|r| seen.insert(*r)), "{}", loss.name());
        }

        check(&MeanLoss::new(fare), &t, &all, 0.05);
        check(&HeatmapLoss::new(pickup, Metric::Euclidean), &t, &all, 0.05);
        check(&HistogramLoss::new(fare), &t, &all, 2.0);
        check(&RegressionLoss::new(fare, tip), &t, &all, 2.0);
    }
}
