//! Stage 2 of sampling-cube initialization: the **real run** (paper
//! §III-B2, Algorithm 2) — materialize a local sample for every iceberg
//! cell found by the dry run.
//!
//! Non-iceberg cuboids are skipped outright. For each iceberg cuboid the
//! paper's cost model (Inequality 1) chooses between two plans for
//! fetching the cells' raw data:
//!
//! * **prune-then-group** — equi-join the raw table against the cuboid's
//!   iceberg-cell list, then group only the surviving rows (wins when the
//!   cuboid has few iceberg cells);
//! * **group-everything** — a plain full-table group-by.
//!
//! Local samples are then drawn per cell with the accuracy-loss-aware
//! greedy sampler, parallelized across cells (the per-cell work is
//! embarrassingly parallel).

use crate::dryrun::DryRun;
use crate::loss::AccuracyLoss;
use crate::Result;
use tabula_obs::span;
use tabula_storage::cube::{CellKey, CuboidMask};
use tabula_storage::group::group_rows;
use tabula_storage::join::semi_join as semi_join_rows;
use tabula_storage::{group_by, FxHashSet, RowId, Table};

/// One materialized iceberg cell: the paper's cube-table row, carrying the
/// cell's raw data (needed later by the SamGraph join) and its local
/// sample.
#[derive(Debug, Clone)]
pub struct CubeEntry {
    /// The cell.
    pub cell: CellKey,
    /// Row ids of the cell's raw data.
    pub rows: Vec<RowId>,
    /// Row ids of the cell's local sample (⊆ `rows`).
    pub sample: Vec<RowId>,
}

/// Which plan Algorithm 2's cost model chose for a cuboid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CuboidPlan {
    /// Equi-join against the iceberg-cell list, then group.
    PruneThenGroup,
    /// Full-table group-by.
    GroupAll,
}

/// Statistics of a real run.
#[derive(Debug, Clone, Default)]
pub struct RealRunStats {
    /// Cuboids that contained iceberg cells and were processed.
    pub cuboids_processed: usize,
    /// Cuboids skipped because the dry run found no icebergs in them.
    pub cuboids_skipped: usize,
    /// How many processed cuboids took the prune-then-group plan.
    pub prune_plans: usize,
    /// How many took the full group-by plan.
    pub group_all_plans: usize,
}

/// Output of the real run.
#[derive(Debug)]
pub struct RealRun {
    /// Materialized iceberg cells, in deterministic order.
    pub entries: Vec<CubeEntry>,
    /// Plan statistics.
    pub stats: RealRunStats,
}

/// The paper's Inequality 1. `n` = table cardinality, `i` = iceberg cells
/// in the cuboid, `k` = all cells in the cuboid. Returns the chosen plan.
pub fn choose_plan(n: usize, i: usize, k: usize) -> CuboidPlan {
    // Degenerate cuboids (k < 2) leave log_k undefined; a full group-by of
    // one group is trivially right.
    if k < 2 || i == 0 {
        return CuboidPlan::GroupAll;
    }
    let (n, i, k) = (n as f64, i as f64, k as f64);
    let log_k = |x: f64| x.max(1.0).ln() / k.ln();
    let pruned_rows = (i / k) * n; // expected rows surviving the prune
    let cost_prune = n * i + pruned_rows * log_k(pruned_rows);
    let cost_group_all = n * log_k(n);
    if cost_prune < cost_group_all {
        CuboidPlan::PruneThenGroup
    } else {
        CuboidPlan::GroupAll
    }
}

/// Run the real-run stage: materialize local samples for every iceberg
/// cell of `dry`, drawing them with `loss`'s Algorithm-1 sampler.
///
/// `parallelism` caps the worker threads used for per-cell sampling
/// (0 = number of available cores).
pub fn real_run<L: AccuracyLoss>(
    table: &Table,
    cols: &[usize],
    loss: &L,
    theta: f64,
    dry: &DryRun<L::State>,
    parallelism: usize,
) -> Result<RealRun> {
    let mut stats = RealRunStats::default();
    let n_cuboids = dry.states.cuboids.len();
    // Deterministic cuboid order: finest first, then by mask.
    let mut masks: Vec<CuboidMask> = dry.iceberg.keys().copied().collect();
    masks.sort_by_key(|m| (std::cmp::Reverse(m.arity()), *m));
    stats.cuboids_skipped = n_cuboids - masks.len();

    // Phase 1 (sequential, data-system work): fetch each iceberg cell's
    // raw rows, with the per-cuboid plan chosen by the cost model.
    let mut work: Vec<(CellKey, Vec<RowId>)> = Vec::with_capacity(dry.iceberg_count);
    for mask in masks {
        let iceberg_keys = &dry.iceberg[&mask];
        let attrs: Vec<usize> = mask.attrs().iter().map(|&a| cols[a]).collect();
        let k_cells = dry.states.cuboids[&mask].len();
        let plan = choose_plan(table.len(), iceberg_keys.len(), k_cells);
        let _cuboid_span =
            span!("real_run.cuboid", "mask={mask:?} plan={plan:?} icebergs={}", iceberg_keys.len());
        stats.cuboids_processed += 1;
        let iceberg_set: FxHashSet<Vec<u32>> = iceberg_keys.iter().cloned().collect();
        let grouped = match plan {
            CuboidPlan::PruneThenGroup => {
                stats.prune_plans += 1;
                let rows = semi_join_rows(table, &attrs, &iceberg_set)?;
                group_rows(table, &attrs, &rows)?
            }
            CuboidPlan::GroupAll => {
                stats.group_all_plans += 1;
                group_by(table, &attrs)?
            }
        };
        let n_attrs = cols.len();
        let mut cells: Vec<(Vec<u32>, Vec<RowId>)> =
            grouped.groups.into_iter().filter(|(key, _)| iceberg_set.contains(key)).collect();
        cells.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (compact, rows) in cells {
            work.push((CellKey::from_compact(mask, n_attrs, &compact), rows));
        }
    }

    // Phase 2 (parallel): draw a local sample per iceberg cell.
    let threads = if parallelism == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        parallelism
    };
    let sample_span = span!("real_run.sample_cells", "cells={} threads={threads}", work.len());
    let entries = sample_cells(table, loss, theta, work, threads);
    drop(sample_span);
    Ok(RealRun { entries, stats })
}

/// Draw local samples for `work` across `threads` workers, preserving
/// input order in the output.
fn sample_cells<L: AccuracyLoss>(
    table: &Table,
    loss: &L,
    theta: f64,
    work: Vec<(CellKey, Vec<RowId>)>,
    threads: usize,
) -> Vec<CubeEntry> {
    if work.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(work.len());
    if threads == 1 {
        return work
            .into_iter()
            .map(|(cell, rows)| {
                let sample = loss.sample_greedy(table, &rows, theta);
                CubeEntry { cell, rows, sample }
            })
            .collect();
    }
    let mut out: Vec<Option<CubeEntry>> = Vec::new();
    out.resize_with(work.len(), || None);
    let out_slices = split_into_parts(&mut out, threads);
    let work_parts = split_vec_into_parts(work, threads);
    std::thread::scope(|scope| {
        for (out_part, work_part) in out_slices.into_iter().zip(work_parts) {
            scope.spawn(move || {
                for (slot, (cell, rows)) in out_part.iter_mut().zip(work_part) {
                    let sample = loss.sample_greedy(table, &rows, theta);
                    *slot = Some(CubeEntry { cell, rows, sample });
                }
            });
        }
    });
    out.into_iter().map(|e| e.expect("every slot filled")).collect()
}

/// Split a mutable slice into `parts` contiguous chunks of near-equal size.
fn split_into_parts<T>(slice: &mut [T], parts: usize) -> Vec<&mut [T]> {
    let len = slice.len();
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut rest = slice;
    for i in 0..parts {
        let take = base + usize::from(i < extra);
        let (head, tail) = rest.split_at_mut(take);
        out.push(head);
        rest = tail;
    }
    out
}

/// Split an owned vec into `parts` contiguous chunks matching
/// [`split_into_parts`]'s sizing.
fn split_vec_into_parts<T>(v: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let len = v.len();
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut rest = v;
    for i in 0..parts {
        let take = base + usize::from(i < extra);
        let tail = rest.split_off(take);
        out.push(rest);
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dryrun::dry_run;
    use crate::loss::{HeatmapLoss, MeanLoss, Metric};
    use crate::serfling::draw_global_sample;
    use tabula_data::example_dcm_table;

    #[test]
    fn cost_model_prefers_prune_for_few_icebergs() {
        // A single iceberg cell in a wide cuboid: join wins. (The paper's
        // literal cost model prices the join at N·i, so prune only wins
        // for very small i relative to log_k(N).)
        assert_eq!(choose_plan(1_000_000, 1, 5_000), CuboidPlan::PruneThenGroup);
        // Most cells iceberg: group-all wins (the N·i term explodes).
        assert_eq!(choose_plan(1_000_000, 4_000, 5_000), CuboidPlan::GroupAll);
        // Degenerate cuboid.
        assert_eq!(choose_plan(100, 1, 1), CuboidPlan::GroupAll);
    }

    fn build(theta: f64) -> (tabula_storage::Table, Vec<CubeEntry>, RealRunStats) {
        let t = example_dcm_table();
        let fare = t.schema().index_of("fare").unwrap();
        let loss = MeanLoss::new(fare);
        let global = draw_global_sample(&t, 8, 1);
        let ctx = loss.prepare(&t, &global);
        let dry = dry_run(&t, &[0, 1, 2], &loss, &ctx, theta).unwrap();
        let rr = real_run(&t, &[0, 1, 2], &loss, theta, &dry, 2).unwrap();
        (t, rr.entries, rr.stats)
    }

    #[test]
    fn every_iceberg_cell_gets_a_sample_meeting_theta() {
        let theta = 0.10;
        let (t, entries, stats) = build(theta);
        assert!(!entries.is_empty());
        assert_eq!(stats.cuboids_processed + stats.cuboids_skipped, 8);
        let fare = t.schema().index_of("fare").unwrap();
        let loss = MeanLoss::new(fare);
        for e in &entries {
            assert!(!e.rows.is_empty());
            assert!(!e.sample.is_empty());
            // Sample rows are a subset of the cell's rows.
            assert!(e.sample.iter().all(|r| e.rows.contains(r)));
            let achieved = loss.loss(&t, &e.rows, &e.sample);
            assert!(achieved <= theta + 1e-12, "cell {}: {achieved}", e.cell);
        }
    }

    #[test]
    fn entry_rows_match_direct_filtering() {
        let (t, entries, _) = build(0.10);
        for e in &entries {
            // Reconstruct the cell's rows by scanning the whole table.
            let cats: Vec<_> = (0..3).map(|c| t.cat(c).unwrap()).collect();
            let expect: Vec<RowId> = (0..t.len() as RowId)
                .filter(|&r| {
                    e.cell
                        .codes
                        .iter()
                        .zip(&cats)
                        .all(|(code, cat)| code.is_none_or(|c| cat.codes()[r as usize] == c))
                })
                .collect();
            let mut got = e.rows.clone();
            got.sort_unstable();
            assert_eq!(got, expect, "cell {}", e.cell);
        }
    }

    #[test]
    fn parallel_and_serial_sampling_agree() {
        let t = example_dcm_table();
        let pickup = t.schema().index_of("pickup").unwrap();
        let loss = HeatmapLoss::new(pickup, Metric::Euclidean);
        let global = draw_global_sample(&t, 5, 3);
        let ctx = loss.prepare(&t, &global);
        let dry = dry_run(&t, &[0, 1, 2], &loss, &ctx, 0.02).unwrap();
        let serial = real_run(&t, &[0, 1, 2], &loss, 0.02, &dry, 1).unwrap();
        let parallel = real_run(&t, &[0, 1, 2], &loss, 0.02, &dry, 4).unwrap();
        assert_eq!(serial.entries.len(), parallel.entries.len());
        for (a, b) in serial.entries.iter().zip(&parallel.entries) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.sample, b.sample);
        }
    }

    #[test]
    fn no_icebergs_means_no_entries() {
        let (_, entries, stats) = build(f64::INFINITY);
        assert!(entries.is_empty());
        assert_eq!(stats.cuboids_processed, 0);
        assert_eq!(stats.cuboids_skipped, 8);
    }

    #[test]
    fn split_helpers_cover_everything_in_order() {
        let mut data: Vec<u32> = (0..10).collect();
        let parts = split_into_parts(&mut data, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &[0, 1, 2, 3]);
        assert_eq!(parts[1], &[4, 5, 6]);
        assert_eq!(parts[2], &[7, 8, 9]);
        let owned = split_vec_into_parts((0..10u32).collect(), 3);
        assert_eq!(owned[0], vec![0, 1, 2, 3]);
        assert_eq!(owned[1], vec![4, 5, 6]);
        assert_eq!(owned[2], vec![7, 8, 9]);
    }
}
