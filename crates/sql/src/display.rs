//! Pretty-printing of [`Statement`] ASTs back to the SQL dialect.
//!
//! The printer is the inverse of [`crate::parse`] on every
//! parser-producible AST: `parse(stmt.to_string()) == stmt`. The
//! differential test suite (`tests/sql_oracle.rs`) fuzzes exactly that
//! round-trip. Two lossy corners exist only for ASTs the parser can never
//! produce, and are best-effort:
//!
//! * a `WHERE` literal `Value::Float64(x)` with `x ≥ 0` and zero
//!   fractional part prints as an integer literal (the parser always
//!   reads those as `Value::Int64`), and a negative `Value::Int64`
//!   re-parses as `Value::Float64` (the grammar's only negative literal);
//! * `Value::Point` has no literal syntax at all.
//!
//! Scalar expressions print fully parenthesized, so operator precedence
//! never has to be reconstructed.

use crate::ast::{DropKind, ShowKind, Statement, WhereTerm};
use std::fmt;
use tabula_core::loss::expr::{AggFn, Expr, Side};
use tabula_storage::{CmpOp, Value};

/// Format a number the way the lexer reads it back: `Display` for `f64`
/// never produces exponent syntax the lexer would reject, and shortest
/// round-trip formatting preserves the exact value.
fn fmt_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    write!(f, "{n}")
}

fn fmt_value(f: &mut fmt::Formatter<'_>, v: &Value) -> fmt::Result {
    match v {
        Value::Int64(i) => write!(f, "{i}"),
        Value::Float64(x) if *x < 0.0 => {
            write!(f, "-")?;
            fmt_number(f, -*x)
        }
        Value::Float64(x) => fmt_number(f, *x),
        Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        // No literal syntax; printed for diagnostics only.
        Value::Point(p) => write!(f, "POINT({}, {})", p.x, p.y),
    }
}

fn op_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn fmt_where(f: &mut fmt::Formatter<'_>, conditions: &[WhereTerm]) -> fmt::Result {
    for (i, term) in conditions.iter().enumerate() {
        write!(
            f,
            "{} {} {} ",
            if i == 0 { " WHERE" } else { "AND" },
            term.column,
            op_str(term.op)
        )?;
        fmt_value(f, &term.value)?;
        if i + 1 < conditions.len() {
            write!(f, " ")?;
        }
    }
    Ok(())
}

fn agg_str(agg: AggFn) -> &'static str {
    match agg {
        AggFn::Avg => "AVG",
        AggFn::Sum => "SUM",
        AggFn::Count => "COUNT",
        AggFn::Min => "MIN",
        AggFn::Max => "MAX",
        AggFn::StdDev => "STDDEV",
    }
}

fn fmt_expr(f: &mut fmt::Formatter<'_>, e: &Expr) -> fmt::Result {
    match e {
        Expr::Const(n) => fmt_number(f, *n),
        Expr::Agg(agg, side) => {
            let side = match side {
                Side::Raw => "Raw",
                Side::Sam => "Sam",
            };
            write!(f, "{}({side})", agg_str(*agg))
        }
        Expr::Neg(inner) => {
            write!(f, "-(")?;
            fmt_expr(f, inner)?;
            write!(f, ")")
        }
        Expr::Abs(inner) => {
            write!(f, "ABS(")?;
            fmt_expr(f, inner)?;
            write!(f, ")")
        }
        Expr::Add(a, b) => fmt_binary(f, a, "+", b),
        Expr::Sub(a, b) => fmt_binary(f, a, "-", b),
        Expr::Mul(a, b) => fmt_binary(f, a, "*", b),
        Expr::Div(a, b) => fmt_binary(f, a, "/", b),
    }
}

fn fmt_binary(f: &mut fmt::Formatter<'_>, a: &Expr, op: &str, b: &Expr) -> fmt::Result {
    write!(f, "(")?;
    fmt_expr(f, a)?;
    write!(f, " {op} ")?;
    fmt_expr(f, b)?;
    write!(f, ")")
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateCube { name, source, cubed_attrs, theta, loss } => {
                write!(f, "CREATE TABLE {name} AS SELECT ")?;
                for attr in cubed_attrs {
                    write!(f, "{attr}, ")?;
                }
                write!(f, "SAMPLING(*, ")?;
                fmt_number(f, *theta)?;
                write!(f, ") AS sample FROM {source} GROUPBY CUBE(")?;
                write!(f, "{}", cubed_attrs.join(", "))?;
                write!(f, ") HAVING {}(", loss.name)?;
                for attr in &loss.target_attrs {
                    write!(f, "{attr}, ")?;
                }
                write!(f, "Sam_global) > ")?;
                fmt_number(f, *theta)
            }
            Statement::CreateAggregate { name, body } => {
                write!(f, "CREATE AGGREGATE {name}(Raw, Sam) RETURN decimal_value AS BEGIN ")?;
                fmt_expr(f, body)?;
                write!(f, " END")
            }
            Statement::SelectSample { cube, conditions } => {
                write!(f, "SELECT sample FROM {cube}")?;
                fmt_where(f, conditions)
            }
            Statement::SelectRaw { table, conditions } => {
                write!(f, "SELECT * FROM {table}")?;
                fmt_where(f, conditions)
            }
            Statement::Drop { kind, name } => {
                let kind = match kind {
                    DropKind::Cube => "CUBE",
                    DropKind::Aggregate => "AGGREGATE",
                };
                write!(f, "DROP {kind} {name}")
            }
            Statement::Show(kind) => {
                let kind = match kind {
                    ShowKind::Cubes => "CUBES",
                    ShowKind::Tables => "TABLES",
                    ShowKind::Aggregates => "AGGREGATES",
                };
                write!(f, "SHOW {kind}")
            }
            Statement::ExplainCube(name) => write!(f, "EXPLAIN CUBE {name}"),
            Statement::ExplainAnalyze(inner) => write!(f, "EXPLAIN ANALYZE {inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    /// Round-trip every statement form the parser's own tests exercise.
    #[test]
    fn printed_statements_reparse_to_the_same_ast() {
        let samples = [
            "CREATE TABLE SamplingCube AS SELECT D, C, M, SAMPLING(*, 0.1) AS sample \
             FROM nyctaxi GROUPBY CUBE(D, C, M) HAVING heatmap_loss(pickup, Sam_global) > 0.1",
            "CREATE TABLE c AS SELECT a, SAMPLING(*, 2.5) AS sample FROM t \
             GROUP BY CUBE(a) HAVING regression_loss(fare, tip, Sam_global) > 2.5",
            "CREATE AGGREGATE my_loss(Raw, Sam) RETURN decimal_value AS \
             BEGIN ABS((AVG(Raw) - AVG(Sam)) / AVG(Raw)) END",
            "CREATE AGGREGATE l(Raw, Sam) RETURN decimal_value AS \
             BEGIN AVG(Raw) + 2 * MAX(Sam) - MIN(Raw) / 4 END",
            "SELECT sample FROM SamplingCube WHERE D = '[0,5)' AND C = 1",
            "SELECT * FROM nyctaxi WHERE payment_type = 'cash' AND fare_amount >= 10.5",
            "SELECT * FROM t WHERE x < -2.5",
            "SELECT * FROM t WHERE s = 'it''s'",
            "SELECT * FROM t",
            "DROP CUBE c",
            "DROP AGGREGATE my_loss",
            "SHOW CUBES",
            "SHOW TABLES",
            "SHOW AGGREGATES",
            "EXPLAIN CUBE SamplingCube",
            "EXPLAIN ANALYZE SELECT sample FROM SamplingCube WHERE D = '[0,5)' AND C = 1",
            "EXPLAIN ANALYZE SELECT * FROM nyctaxi WHERE payment_type = 'cash'",
        ];
        for sql in samples {
            let ast = parse(sql).expect(sql);
            let printed = ast.to_string();
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("printed SQL fails to parse: {printed}\n{e}"));
            assert_eq!(reparsed, ast, "round-trip changed the AST for: {printed}");
        }
    }
}
