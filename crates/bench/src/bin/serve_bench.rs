//! Closed-loop throughput benchmark for the serving layer (`tabula-serve`).
//!
//! `N` client threads (scheduled on the tabula-par pool) replay a seeded
//! zoom/pan dashboard session against three configurations:
//!
//! 1. **baseline** — uncached [`SamplingCube::query`] + materialization,
//!    the pre-serve read path;
//! 2. **cold** — a fresh [`Server`] (compiled predicates + serving index,
//!    empty answer cache);
//! 3. **warm** — the same server replaying the same session, so the
//!    sharded answer cache absorbs the session's revisit locality.
//!
//! Emits `BENCH_serve_qps.json` (qps per phase, p50/p99 client latency,
//! cache hit rate, warm speedup over baseline) via the standard run
//! summary, honouring `TABULA_BENCH_OUT`, `TABULA_CACHE_MB` and
//! `TABULA_CACHE_BYPASS`.
//!
//! Run with `cargo run --release -p tabula-bench --bin serve_bench`
//! (`--quick` shrinks the dataset for CI; `--clients N` overrides the
//! client-thread count, default 8).

use std::sync::Arc;
use std::time::Instant;

use tabula_bench::{default_rows, fmt_bytes, taxi_table, write_run_summary, SEED};
use tabula_core::loss::MeanLoss;
use tabula_core::{MaterializationMode, SamplingCube, SamplingCubeBuilder};
use tabula_data::{QueryCell, Workload, CUBED_ATTRIBUTES};
use tabula_obs::Registry;
use tabula_par::Pool;
use tabula_serve::{AnswerCache, Server, SERVE_HITS, SERVE_MISSES};

/// Revisit probability of the zoom/pan session generator: dashboards
/// re-render recently seen cells (pan back, zoom out) far more often
/// than uniform sampling over the lattice would.
const REVISIT: f64 = 0.4;

/// Per-client offset stride so concurrent clients interleave cold and
/// warm probes instead of marching in lockstep.
const CLIENT_STRIDE: usize = 37;

struct Args {
    quick: bool,
    clients: usize,
}

fn parse_args() -> Args {
    let mut args = Args { quick: false, clients: 8 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--clients" => {
                args.clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--clients needs a positive integer"));
                assert!(args.clients > 0, "--clients needs a positive integer");
            }
            other => panic!("unknown argument {other:?} (expected --quick / --clients N)"),
        }
    }
    args
}

/// Sweep the whole session once from every client, closed-loop: each
/// client issues its next query the moment the previous one returns.
/// Returns (elapsed seconds, per-query latencies in ns, sample rows
/// shipped) — the latter two folded across all clients.
fn run_phase<F>(pool: &Pool, clients: usize, queries: &[QueryCell], f: F) -> (f64, Vec<u64>, u64)
where
    F: Fn(&QueryCell) -> usize + Sync,
{
    let started = Instant::now();
    let per_client: Vec<(Vec<u64>, u64)> = pool.run(clients, |c| {
        let mut lat = Vec::with_capacity(queries.len());
        let mut shipped = 0u64;
        for i in 0..queries.len() {
            let q = &queries[(i + c * CLIENT_STRIDE) % queries.len()];
            let t0 = Instant::now();
            shipped += f(q) as u64;
            lat.push(t0.elapsed().as_nanos() as u64);
        }
        (lat, shipped)
    });
    let secs = started.elapsed().as_secs_f64();
    let mut lat = Vec::with_capacity(clients * queries.len());
    let mut shipped = 0u64;
    for (l, s) in per_client {
        lat.extend(l);
        shipped += s;
    }
    (secs, lat, shipped)
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args = parse_args();
    let rows = if args.quick { 4_000 } else { default_rows() };
    let n_queries = if args.quick { 200 } else { 800 };
    let attrs = &CUBED_ATTRIBUTES[..3];

    println!(
        "serve_bench: {rows} rows, {n_queries}-query session, {} clients{}",
        args.clients,
        if args.quick { " [quick]" } else { "" }
    );

    let table = taxi_table(rows);
    let registry = Arc::new(Registry::new());
    let fare = table.schema().index_of("fare_amount").expect("taxi schema has fare_amount");
    let cube: Arc<SamplingCube> = Arc::new(
        SamplingCubeBuilder::new(Arc::clone(&table), attrs, MeanLoss::new(fare), 0.05)
            .seed(SEED)
            .mode(MaterializationMode::Tabula)
            .build()
            .expect("cube build succeeds")
            .with_registry(&registry),
    );
    let queries = Workload::new(attrs)
        .generate_session(&table, n_queries, SEED ^ 0x5E55, REVISIT)
        .expect("session generation succeeds");

    let pool = Pool::with_threads(args.clients);
    let total = (args.clients * queries.len()) as f64;

    // Phase 1: uncached baseline — the read path before the serving layer
    // existed (hash probe into the cube table + materialization per query).
    let (base_secs, mut base_lat, base_rows) = run_phase(&pool, args.clients, &queries, |q| {
        let answer = cube.query(&q.predicate).expect("cube query succeeds");
        answer.materialize(&table).len()
    });

    // Phase 2: cold server — compiled predicates + frozen index, but every
    // answer is a cache miss that must be computed and inserted.
    let srv = Server::with_cache(Arc::clone(&cube), AnswerCache::from_env(), Arc::clone(&registry))
        .expect("server build succeeds");
    let (cold_secs, mut cold_lat, cold_rows) = run_phase(&pool, args.clients, &queries, |q| {
        srv.query(&q.predicate).expect("serve query succeeds").table.len()
    });

    // Phase 3: warm server — same session replayed against the populated
    // cache; the revisit locality should now be pure lookups.
    let (warm_secs, mut warm_lat, warm_rows) = run_phase(&pool, args.clients, &queries, |q| {
        srv.query(&q.predicate).expect("serve query succeeds").table.len()
    });

    assert_eq!(base_rows, cold_rows, "cold serve pass must ship identical sample rows");
    assert_eq!(base_rows, warm_rows, "warm serve pass must ship identical sample rows");

    base_lat.sort_unstable();
    cold_lat.sort_unstable();
    warm_lat.sort_unstable();

    let qps_baseline = total / base_secs;
    let qps_cold = total / cold_secs;
    let qps_warm = total / warm_secs;
    let speedup_warm = qps_warm / qps_baseline;

    let snap = registry.snapshot();
    let hits = snap.counter(SERVE_HITS);
    let misses = snap.counter(SERVE_MISSES);
    let hit_rate = if hits + misses > 0 { hits as f64 / (hits + misses) as f64 } else { 0.0 };

    println!();
    println!("{:<10} {:>12} {:>12} {:>12} {:>9}", "phase", "qps", "p50", "p99", "speedup");
    for (name, qps, lat) in [
        ("baseline", qps_baseline, &base_lat),
        ("cold", qps_cold, &cold_lat),
        ("warm", qps_warm, &warm_lat),
    ] {
        println!(
            "{:<10} {:>12.0} {:>10}ns {:>10}ns {:>8.2}x",
            name,
            qps,
            quantile(lat, 0.50),
            quantile(lat, 0.99),
            qps / qps_baseline
        );
    }
    println!();
    println!(
        "cache: {} entries, {} held, hit rate {:.1}% ({} hits / {} misses)",
        srv.cache().len(),
        fmt_bytes(srv.cache().bytes()),
        hit_rate * 100.0,
        hits,
        misses
    );

    use serde::Value;
    let path = write_run_summary(
        "serve_qps",
        &snap,
        &[
            ("client_threads", Value::Int(args.clients as i128)),
            ("session_queries", Value::Int(queries.len() as i128)),
            ("quick", Value::Bool(args.quick)),
            ("qps_baseline", Value::Float(qps_baseline)),
            ("qps_cold", Value::Float(qps_cold)),
            ("qps_warm", Value::Float(qps_warm)),
            ("speedup_warm_vs_baseline", Value::Float(speedup_warm)),
            ("cache_hit_rate", Value::Float(hit_rate)),
            ("p50_warm_ns", Value::Int(quantile(&warm_lat, 0.50) as i128)),
            ("p99_warm_ns", Value::Int(quantile(&warm_lat, 0.99) as i128)),
            ("p50_baseline_ns", Value::Int(quantile(&base_lat, 0.50) as i128)),
            ("p99_baseline_ns", Value::Int(quantile(&base_lat, 0.99) as i128)),
        ],
    )
    .expect("run summary written");
    println!("summary: {}", path.display());
}
