//! Cube persistence: the paper stores the sampling cube "in the
//! underlying data system"; here that is a serde round-trip paired with
//! the raw table at load time.

use std::sync::Arc;
use tabula::core::cube::CubePersist;
use tabula::core::loss::{AccuracyLoss, MeanLoss};
use tabula::core::{SamplingCube, SamplingCubeBuilder};
use tabula::data::{TaxiConfig, TaxiGenerator, Workload, CUBED_ATTRIBUTES};

#[test]
fn cube_round_trips_through_json_and_keeps_the_guarantee() {
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 8_000, seed: 21 }).generate());
    let fare = table.schema().index_of("fare_amount").unwrap();
    let loss = MeanLoss::new(fare);
    let theta = 0.05;
    let cube =
        SamplingCubeBuilder::new(Arc::clone(&table), &CUBED_ATTRIBUTES[..4], loss.clone(), theta)
            .seed(8)
            .build()
            .unwrap();

    let json = serde_json::to_string(&cube.to_persist()).unwrap();
    let persist: CubePersist = serde_json::from_str(&json).unwrap();
    let restored = SamplingCube::from_persist(persist, Arc::clone(&table)).unwrap();

    assert_eq!(restored.materialized_cells(), cube.materialized_cells());
    assert_eq!(restored.persisted_samples(), cube.persisted_samples());
    assert_eq!(restored.theta(), cube.theta());
    assert_eq!(restored.memory_breakdown().total(), cube.memory_breakdown().total());

    // Replay a workload: answers identical, guarantee intact.
    let workload = Workload::new(&CUBED_ATTRIBUTES[..4]);
    for q in workload.generate(&table, 30, 99).unwrap() {
        let a = cube.query_cell(&q.cell);
        let b = restored.query_cell(&q.cell);
        assert_eq!(a.rows, b.rows, "query [{}]", q.description);
        assert_eq!(a.provenance, b.provenance);
        let raw = q.predicate.filter(&table).unwrap();
        assert!(loss.loss(&table, &raw, &b.rows) <= theta + 1e-9);
    }
}

#[test]
fn table_snapshot_plus_cube_is_fully_self_contained() {
    // Persist BOTH the raw table and the cube; reload into fresh memory.
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 3_000, seed: 22 }).generate());
    let fare = table.schema().index_of("fare_amount").unwrap();
    let cube = SamplingCubeBuilder::new(
        Arc::clone(&table),
        &CUBED_ATTRIBUTES[..3],
        MeanLoss::new(fare),
        0.05,
    )
    .build()
    .unwrap();

    let table_json = serde_json::to_string(&*table).unwrap();
    let cube_json = serde_json::to_string(&cube.to_persist()).unwrap();
    drop(cube);
    drop(table);

    let table2: Arc<tabula::storage::Table> = Arc::new(serde_json::from_str(&table_json).unwrap());
    let persist: CubePersist = serde_json::from_str(&cube_json).unwrap();
    let cube2 = SamplingCube::from_persist(persist, Arc::clone(&table2)).unwrap();
    let answer = cube2.query(&tabula::storage::Predicate::eq("pickup_weekday", "Fri")).unwrap();
    assert!(!answer.is_empty());
    // Materialization works against the reloaded table.
    let sample = answer.materialize(&table2);
    assert_eq!(sample.len(), answer.len());
}
