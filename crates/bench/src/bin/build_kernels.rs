//! Micro-benchmark of the chunked columnar **build kernels** against their
//! row-at-a-time scalar reference paths — the three hot loops of cube
//! initialization (ISSUE: vectorized columnar build kernels):
//!
//! * `filter` — predicate scan ([`Predicate::filter`]): compiled terms over
//!   a [`SelectionVector`](tabula_storage::SelectionVector) vs per-row
//!   `Value` comparison,
//! * `group_by` — hash grouping on bit-packed `u64` keys vs `u32` slice
//!   keys,
//! * `finest_agg` — the finest-cuboid aggregation scan on packed codes vs
//!   per-row key materialization.
//!
//! Each kernel runs under `KernelMode::ForceScalar` and
//! `KernelMode::ForceVectorized` on the same table, single-threaded (the
//! point is ns/row of the kernel, not the morsel scheduler), and the two
//! outputs are asserted identical — the same byte-identity contract the
//! fuzz harness's kernel-differential lane enforces at scale.
//!
//! `BENCH_build_kernels.json` records ns/row per kernel per mode plus the
//! speedup; the `kernel-bench` CI job gates on the group-by speedup.
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin build_kernels
//! TABULA_BENCH_ROWS=1000000 cargo run --release -p tabula-bench --bin build_kernels
//! ```

use serde::Value;
use std::collections::BTreeMap;
use std::time::Instant;
use tabula_bench::{taxi_table, write_run_summary};
use tabula_data::CUBED_ATTRIBUTES;
use tabula_storage::agg::SumCount;
use tabula_storage::cube::finest_cuboid;
use tabula_storage::{group_by, set_kernel_mode, CmpOp, Column, KernelMode, Predicate, RowId};

/// Larger default than the harness-wide 20 000: kernel ns/row needs enough
/// rows for the per-run fixed costs to vanish, and the CI gate needs a
/// stable speedup. `TABULA_BENCH_ROWS` still overrides.
const DEFAULT_KERNEL_ROWS: usize = 200_000;

fn bench_rows() -> usize {
    std::env::var("TABULA_BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_KERNEL_ROWS)
}

/// Best-of-`reps` wall time of `f`, after one untimed warmup run. Returns
/// the minimum nanoseconds and the last output (for the equality check).
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (u64, R) {
    let mut out = f();
    let mut best = u64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    (best, out)
}

/// Run one kernel under both modes, assert the outputs identical, print
/// the row, and return the JSON result object.
fn compare<R, K>(
    name: &str,
    rows: usize,
    reps: usize,
    mut kernel: impl FnMut() -> R,
    key: K,
) -> Value
where
    K: Fn(&R) -> Vec<u8>,
{
    set_kernel_mode(KernelMode::ForceScalar);
    let (scalar_ns, scalar_out) = time_best(reps, &mut kernel);
    set_kernel_mode(KernelMode::ForceVectorized);
    let (vector_ns, vector_out) = time_best(reps, &mut kernel);
    assert_eq!(
        key(&scalar_out),
        key(&vector_out),
        "{name}: scalar and vectorized kernels disagree"
    );
    let per_row = |ns: u64| ns as f64 / rows as f64;
    let speedup = scalar_ns as f64 / vector_ns.max(1) as f64;
    println!(
        "{name:<12} {:>14.2} {:>17.2} {:>9.2}x",
        per_row(scalar_ns),
        per_row(vector_ns),
        speedup
    );
    let mut row = BTreeMap::new();
    row.insert("kernel".to_owned(), Value::Str(name.to_owned()));
    row.insert("rows".to_owned(), Value::Int(rows as i128));
    row.insert("scalar_ns_per_row".to_owned(), Value::Float(per_row(scalar_ns)));
    row.insert("vectorized_ns_per_row".to_owned(), Value::Float(per_row(vector_ns)));
    row.insert("speedup".to_owned(), Value::Float(speedup));
    Value::Obj(row)
}

/// Canonical byte image of a grouping: sorted `(key, members)` pairs.
fn grouping_bytes(groups: &tabula_storage::GroupedRows) -> Vec<u8> {
    let mut entries: Vec<(&Vec<u32>, &Vec<RowId>)> = groups.groups.iter().collect();
    entries.sort();
    let mut out = Vec::new();
    for (k, m) in entries {
        for c in k.iter() {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&u64::MAX.to_le_bytes());
        for r in m.iter() {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&u64::MAX.to_le_bytes());
    }
    out
}

fn main() {
    let rows = bench_rows();
    let table = taxi_table(rows);
    // Kernel time, not scheduler time: pin to one worker.
    tabula_par::set_threads(1);
    let prev_mode = tabula_storage::kernel_mode();

    let cols: Vec<usize> = CUBED_ATTRIBUTES[..4]
        .iter()
        .map(|name| table.schema().index_of(name).expect("cubed attribute"))
        .collect();
    // Warm the shared dictionary encoding once, outside every timed
    // region (same hoist as fig08_init_time).
    for &c in &cols {
        let _ = table.cat(c);
    }
    let fare = match table.column_by_name("fare_amount").expect("fare_amount") {
        Column::Float64(v) => &v[..],
        other => panic!("fare_amount is {other:?}, expected Float64"),
    };
    let vendor = table.value(0, table.schema().index_of("vendor_name").unwrap());
    let pred = Predicate::all().and("vendor_name".to_owned(), CmpOp::Eq, vendor).and(
        "fare_amount".to_owned(),
        CmpOp::Ge,
        tabula_storage::Value::Float64(10.0),
    );

    let reps = 5;
    println!("# build kernels | rows = {rows} | threads = 1 | best of {reps}");
    println!(
        "{:<12} {:>14} {:>17} {:>10}",
        "kernel", "scalar ns/row", "vectorized ns/row", "speedup"
    );

    let t = &table;
    let results = vec![
        compare(
            "filter",
            rows,
            reps,
            || pred.filter(t).expect("filter succeeds"),
            |ids: &Vec<RowId>| ids.iter().flat_map(|r| r.to_le_bytes()).collect(),
        ),
        compare(
            "group_by",
            rows,
            reps,
            || group_by(t, &cols).expect("group_by succeeds"),
            grouping_bytes,
        ),
        compare(
            "finest_agg",
            rows,
            reps,
            || {
                finest_cuboid(t, &cols, SumCount::default, |s, row| s.add(fare[row as usize]))
                    .expect("finest cuboid succeeds")
            },
            |finest: &tabula_storage::FxHashMap<Vec<u32>, SumCount>| {
                let mut entries: Vec<_> = finest.iter().collect();
                entries.sort_by(|a, b| a.0.cmp(b.0));
                let mut out = Vec::new();
                for (k, s) in entries {
                    for c in k.iter() {
                        out.extend_from_slice(&c.to_le_bytes());
                    }
                    // Bit-exact: the kernels promise identical float bits,
                    // not merely approximately equal sums.
                    out.extend_from_slice(&s.sum.to_bits().to_le_bytes());
                    out.extend_from_slice(&s.count.to_le_bytes());
                }
                out
            },
        ),
    ];

    set_kernel_mode(prev_mode);
    tabula_par::set_threads(0);

    let registry = tabula_obs::Registry::new();
    match write_run_summary(
        "build_kernels",
        &registry.snapshot(),
        &[("results", Value::Arr(results)), ("kernel_rows", Value::Int(rows as i128))],
    ) {
        Ok(path) => println!("\nrun summary written to {}", path.display()),
        Err(e) => eprintln!("\ncould not write run summary: {e}"),
    }
}
