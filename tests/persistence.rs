//! Cube persistence: the paper stores the sampling cube "in the
//! underlying data system"; here that is a serde round-trip paired with
//! the raw table at load time.

use std::sync::Arc;
use tabula::core::cube::CubePersist;
use tabula::core::loss::{AccuracyLoss, MeanLoss};
use tabula::core::{SamplingCube, SamplingCubeBuilder};
use tabula::data::{TaxiConfig, TaxiGenerator, Workload, CUBED_ATTRIBUTES};

#[test]
fn cube_round_trips_through_json_and_keeps_the_guarantee() {
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 8_000, seed: 21 }).generate());
    let fare = table.schema().index_of("fare_amount").unwrap();
    let loss = MeanLoss::new(fare);
    let theta = 0.05;
    let cube =
        SamplingCubeBuilder::new(Arc::clone(&table), &CUBED_ATTRIBUTES[..4], loss.clone(), theta)
            .seed(8)
            .build()
            .unwrap();

    let json = serde_json::to_string(&cube.to_persist()).unwrap();
    let persist: CubePersist = serde_json::from_str(&json).unwrap();
    let restored = SamplingCube::from_persist(persist, Arc::clone(&table)).unwrap();

    assert_eq!(restored.materialized_cells(), cube.materialized_cells());
    assert_eq!(restored.persisted_samples(), cube.persisted_samples());
    assert_eq!(restored.theta(), cube.theta());
    assert_eq!(restored.memory_breakdown().total(), cube.memory_breakdown().total());

    // Replay a workload: answers identical, guarantee intact.
    let workload = Workload::new(&CUBED_ATTRIBUTES[..4]);
    for q in workload.generate(&table, 30, 99).unwrap() {
        let a = cube.query_cell(&q.cell);
        let b = restored.query_cell(&q.cell);
        assert_eq!(a.rows, b.rows, "query [{}]", q.description);
        assert_eq!(a.provenance, b.provenance);
        let raw = q.predicate.filter(&table).unwrap();
        assert!(loss.loss(&table, &raw, &b.rows) <= theta + 1e-9);
    }
}

/// Env var carrying the snapshot path when this test re-invokes itself.
const XPROC_VAR: &str = "TABULA_SNAP_XPROC_PATH";

#[test]
fn snapshot_answers_are_identical_across_processes() {
    // The binary snapshot must be loadable by a *different* process and
    // produce byte-identical answers — catching any accidental dependence
    // on process-local state (interner order, hash seeds, ASLR-derived
    // ordering). The parent builds a cube, freezes it, and replays a
    // deterministic workload; the child (this same test, re-invoked via
    // `std::process::Command` with `XPROC_VAR` set) thaws the snapshot and
    // prints its answers over stdout for the parent to compare.
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 6_000, seed: 23 }).generate());

    // Both halves answer the same deterministic workload and render each
    // answer as one line: index, provenance, exact row ids.
    let answers = |cube: &SamplingCube| -> Vec<String> {
        let workload = Workload::new(&CUBED_ATTRIBUTES[..4]);
        workload
            .generate(&table, 25, 77)
            .unwrap()
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let a = cube.query_cell(&q.cell);
                let ids: Vec<String> = a.rows.iter().map(|r| r.to_string()).collect();
                format!("ANS {i} {:?} [{}]", a.provenance, ids.join(","))
            })
            .collect()
    };

    if let Ok(path) = std::env::var(XPROC_VAR) {
        // Child half: thaw and answer. Any load failure fails the child,
        // which the parent reports with the child's stderr.
        let (cube, _info) = SamplingCube::from_snapshot(std::path::Path::new(&path)).unwrap();
        for line in answers(&cube) {
            println!("{line}");
        }
        return;
    }

    let fare = table.schema().index_of("fare_amount").unwrap();
    let cube = SamplingCubeBuilder::new(
        Arc::clone(&table),
        &CUBED_ATTRIBUTES[..4],
        MeanLoss::new(fare),
        0.05,
    )
    .seed(4)
    .build()
    .unwrap();
    let path = std::env::temp_dir().join(format!("tabula-xproc-{}.tabsnap", std::process::id()));
    cube.write_snapshot(&path, 7).unwrap();
    let expected = answers(&cube);

    let out = std::process::Command::new(std::env::current_exe().unwrap())
        .args(["--exact", "snapshot_answers_are_identical_across_processes", "--nocapture"])
        .env(XPROC_VAR, &path)
        .output()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert!(
        out.status.success(),
        "child process failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    // The libtest harness prints "test <name> ... " without a newline
    // before the child's first answer, so match `ANS` anywhere in a line.
    let got: Vec<String> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter_map(|l| l.find("ANS ").map(|i| l[i..].to_string()))
        .collect();
    assert_eq!(
        got.len(),
        expected.len(),
        "child answered {} of {} queries; raw child stdout:\n{}",
        got.len(),
        expected.len(),
        String::from_utf8_lossy(&out.stdout)
    );
    assert_eq!(got, expected, "cross-process answers diverged");
}

#[test]
fn table_snapshot_plus_cube_is_fully_self_contained() {
    // Persist BOTH the raw table and the cube; reload into fresh memory.
    let table = Arc::new(TaxiGenerator::new(TaxiConfig { rows: 3_000, seed: 22 }).generate());
    let fare = table.schema().index_of("fare_amount").unwrap();
    let cube = SamplingCubeBuilder::new(
        Arc::clone(&table),
        &CUBED_ATTRIBUTES[..3],
        MeanLoss::new(fare),
        0.05,
    )
    .build()
    .unwrap();

    let table_json = serde_json::to_string(&*table).unwrap();
    let cube_json = serde_json::to_string(&cube.to_persist()).unwrap();
    drop(cube);
    drop(table);

    let table2: Arc<tabula::storage::Table> = Arc::new(serde_json::from_str(&table_json).unwrap());
    let persist: CubePersist = serde_json::from_str(&cube_json).unwrap();
    let cube2 = SamplingCube::from_persist(persist, Arc::clone(&table2)).unwrap();
    let answer = cube2.query(&tabula::storage::Predicate::eq("pickup_weekday", "Fri")).unwrap();
    assert!(!answer.is_empty());
    // Materialization works against the reloaded table.
    let sample = answer.materialize(&table2);
    assert_eq!(sample.len(), answer.len());
}
