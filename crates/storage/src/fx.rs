//! A minimal FxHash implementation and hash-map/set aliases built on it.
//!
//! Cube construction hashes millions of small integer-tuple group keys; the
//! default SipHash 1-3 hasher is measurably slower for such keys. The
//! `rustc-hash` crate is not on this project's allowed dependency list, so
//! the (tiny, public-domain) algorithm is reimplemented here. HashDoS
//! resistance is irrelevant: all hashed keys originate from trusted,
//! locally-generated data.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by FxHash (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash hasher: a fast, non-cryptographic, word-at-a-time hash.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // Unwrap is fine: chunks_exact guarantees 8 bytes.
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic_for_equal_inputs() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&vec![1u32, 2, 3]), hash_of(&vec![1u32, 2, 3]));
        assert_eq!(hash_of(&"tabula"), hash_of(&"tabula"));
    }

    #[test]
    fn distinguishes_nearby_inputs() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&vec![1u32, 2]), hash_of(&vec![2u32, 1]));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        // Note: FxHash absorbs zero words into a zero state, so "" and
        // "\0" DO collide — acceptable for trusted integer-tuple keys.
    }

    #[test]
    fn byte_stream_tail_handling() {
        // Streams whose lengths straddle the 8-byte chunk boundary must not
        // collide just because their prefixes agree.
        let a: Vec<u8> = (0..7).collect();
        let b: Vec<u8> = (0..8).collect();
        let c: Vec<u8> = (0..9).collect();
        assert_ne!(hash_of(&a), hash_of(&b));
        assert_ne!(hash_of(&b), hash_of(&c));
    }

    #[test]
    fn map_and_set_work_end_to_end() {
        let mut map: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        map.insert(vec![1, 2, 3], 7);
        map.insert(vec![3, 2, 1], 8);
        assert_eq!(map.get(&vec![1, 2, 3]), Some(&7));
        assert_eq!(map.len(), 2);

        let mut set: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            set.insert(i * 31);
        }
        assert_eq!(set.len(), 1000);
        assert!(set.contains(&(31 * 999)));
    }
}
