//! Row-major packed code buffers for the group-by / cube hot paths.
//!
//! Hashing a grouping key used to mean assembling a fresh `Vec<u32>` per
//! row (or reusing one scratch vector, still touching every column slice
//! per row). [`PackedCodes`] instead transposes the relevant dictionary
//! codes into one flat row-major `Vec<u32>` per morsel — filled column by
//! column (sequential reads down each code slice), then consumed row by
//! row as fixed-width `&[u32]` slices. Hash-map lookups borrow those
//! slices directly (`Vec<u32>: Borrow<[u32]>`), so the per-row allocation
//! disappears entirely: only a genuinely *new* group clones its key.

use crate::table::RowId;

/// A row-major buffer of grouping codes: `width` codes per row, packed
/// contiguously. Reusable across morsels via [`PackedCodes::fill`].
#[derive(Debug, Default)]
pub struct PackedCodes {
    width: usize,
    rows: usize,
    flat: Vec<u32>,
}

impl PackedCodes {
    /// An empty buffer for keys of `width` codes.
    pub fn new(width: usize) -> Self {
        PackedCodes { width, rows: 0, flat: Vec::new() }
    }

    /// Repack the buffer with the codes of `rows`, read from the
    /// per-column `code_slices` (one `&[u32]` per grouping column, full
    /// table length). Column-major fill: each source slice is walked once.
    pub fn fill(&mut self, code_slices: &[&[u32]], rows: &[RowId]) {
        debug_assert_eq!(code_slices.len(), self.width);
        self.rows = rows.len();
        self.flat.clear();
        self.flat.resize(rows.len() * self.width, 0);
        for (c, codes) in code_slices.iter().enumerate() {
            let mut at = c;
            for &row in rows {
                self.flat[at] = codes[row as usize];
                at += self.width;
            }
        }
    }

    /// Repack with a contiguous row range (the morsel fast path — no row
    /// id indirection).
    pub fn fill_range(&mut self, code_slices: &[&[u32]], range: std::ops::Range<usize>) {
        debug_assert_eq!(code_slices.len(), self.width);
        self.rows = range.len();
        self.flat.clear();
        self.flat.resize(range.len() * self.width, 0);
        for (c, codes) in code_slices.iter().enumerate() {
            let mut at = c;
            for &code in &codes[range.clone()] {
                self.flat[at] = code;
                at += self.width;
            }
        }
    }

    /// Number of packed rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the buffer holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The `i`-th row's key as a fixed-width slice.
    #[inline]
    pub fn key(&self, i: usize) -> &[u32] {
        &self.flat[i * self.width..(i + 1) * self.width]
    }

    /// Iterate the packed keys in row order.
    pub fn keys(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.rows).map(|i| self.key(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_transposes_column_slices() {
        let col_a: &[u32] = &[10, 11, 12, 13];
        let col_b: &[u32] = &[20, 21, 22, 23];
        let mut p = PackedCodes::new(2);
        p.fill(&[col_a, col_b], &[0, 2, 3]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.key(0), &[10, 20]);
        assert_eq!(p.key(1), &[12, 22]);
        assert_eq!(p.key(2), &[13, 23]);
        let all: Vec<&[u32]> = p.keys().collect();
        assert_eq!(all, vec![&[10, 20][..], &[12, 22][..], &[13, 23][..]]);
    }

    #[test]
    fn fill_range_matches_fill() {
        let col: &[u32] = &[5, 6, 7, 8, 9];
        let mut a = PackedCodes::new(1);
        let mut b = PackedCodes::new(1);
        a.fill(&[col], &[1, 2, 3]);
        b.fill_range(&[col], 1..4);
        assert_eq!(a.key(0), b.key(0));
        assert_eq!(a.key(2), b.key(2));
    }

    #[test]
    fn zero_width_keys() {
        let mut p = PackedCodes::new(0);
        p.fill(&[], &[0, 1, 2]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.key(1), &[] as &[u32]);
        assert_eq!(p.keys().count(), 3);
    }

    #[test]
    fn refill_reuses_buffer() {
        let col: &[u32] = &[1, 2, 3];
        let mut p = PackedCodes::new(1);
        p.fill(&[col], &[0, 1, 2]);
        p.fill(&[col], &[2]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.key(0), &[3]);
    }
}
