//! Snapshot materialization: freeze a built [`SamplingCube`] into a
//! `tabula-store` file and thaw it back without repaying the build.
//!
//! This is the production persistence route (the JSON
//! [`crate::cube::CubePersist`] path remains for debugging/interchange).
//! Unlike `CubePersist`, a snapshot is **self-contained**: it carries the
//! raw table's columns alongside the cube table, sample lists and global
//! sample, so a fresh process restores a serving-ready cube from one file.
//!
//! ## Block inventory
//!
//! | block              | payload                                        |
//! |--------------------|------------------------------------------------|
//! | `schema`           | table schema (JSON)                            |
//! | `col:<i>:data`     | Int64 / Float64 / Point column words           |
//! | `col:<i>:codes`    | Str column dictionary codes (u32)              |
//! | `col:<i>:dict`     | Str column dictionary (offsets + UTF-8 heap)   |
//! | `cube:keys`        | packed cell keys (u64, ascending) *or*         |
//! | `cube:flat`        | flat u32 keys when Σ bits > 64 (`u32::MAX`=\*) |
//! | `cube:sample_ids`  | sample id per cell, aligned with keys (u32)    |
//! | `samples:offsets`  | prefix offsets into `samples:rows` (u64)       |
//! | `samples:rows`     | concatenated local-sample row ids (u32)        |
//! | `global:rows`      | global-sample row ids (u32)                    |
//! | `stats`            | [`BuildStats`] (JSON)                          |
//!
//! Cell keys are encoded over per-attribute domains of `cardinality + 1`
//! (slot 0 is `*`/`None`, code `c` maps to `c + 1`) and written in
//! ascending key order, so snapshot bytes are a pure function of cube
//! content — two processes that built the same cube write identical files.
//!
//! ## What is verified on load
//!
//! Beyond the store layer's checksums, the loader re-derives every
//! invariant it relies on: dictionary codes < dictionary length, the
//! recomputed key layout's bit widths against the manifest's, cell codes <
//! attribute cardinality, sample ids < sample count, row ids < table
//! length, sample offsets monotonic and exhaustive. A snapshot that loads
//! is a cube that cannot index out of bounds.

use std::path::Path;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use tabula_storage::{CellKey, Column, ColumnType, FxHashMap, KeyLayout, RowId, Schema, Table};
use tabula_store::{Snapshot, SnapshotWriter, StoreError};

use crate::cube::{BuildStats, SamplingCube};
use crate::Result;

/// Writer-defined manifest payload for cube snapshots.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CubeMeta {
    /// Snapshot kind tag; loaders reject anything but `"sampling-cube"`.
    kind: String,
    /// Cubed attribute names, in cube order.
    attrs: Vec<String>,
    /// Accuracy-loss threshold θ.
    theta: f64,
    /// `"packed64"` or `"flat32"`.
    key_encoding: String,
    /// Per-attribute bit widths of the packed key layout (empty for
    /// `flat32`); verified against recomputed cardinalities on load.
    key_bits: Vec<u32>,
    /// Materialized cell count.
    cells: u64,
    /// Raw table row count.
    table_rows: u64,
    /// Persisted local-sample count.
    samples: u64,
}

/// Summary of a loaded snapshot, surfaced to serve/REPL layers.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotInfo {
    /// Serving-generation epoch stamped at write time.
    pub epoch: u64,
    /// Total snapshot size in bytes.
    pub file_bytes: u64,
    /// Materialized cells restored.
    pub cells: usize,
}

const KIND: &str = "sampling-cube";
const ENC_PACKED: &str = "packed64";
const ENC_FLAT: &str = "flat32";
/// Flat-encoding sentinel for `*`/`None`.
const FLAT_STAR: u32 = u32::MAX;

fn corrupt(msg: impl Into<String>) -> crate::CoreError {
    StoreError::CorruptManifest(msg.into()).into()
}

fn bad_block(region: &str, reason: impl Into<String>) -> crate::CoreError {
    StoreError::BadBlock { region: format!("block:{region}"), reason: reason.into() }.into()
}

/// Per-attribute cardinalities of the cubed columns (the `+1`-shifted
/// domains the key encoders run over).
fn cardinalities(table: &Table, cols: &[usize]) -> Result<Vec<usize>> {
    cols.iter().map(|&c| Ok(table.cat(c)?.cardinality())).collect()
}

/// Load a column payload in whatever representation the snapshot holds:
/// an `:rle` or `:for` block becomes a zero-copy encoded buffer (decoded
/// lazily, only if a scalar path ever needs the plain rows); otherwise
/// `plain` views the raw-words block.
fn restore_buf<'s, T: tabula_storage::Codable>(
    snap: &'s Snapshot,
    base: &str,
    plain: impl FnOnce(
        tabula_store::BlockView<'s>,
    ) -> tabula_store::Result<tabula_storage::ColumnBuf<T>>,
) -> tabula_store::Result<tabula_storage::ColumnBuf<T>> {
    let rle = format!("{base}:rle");
    if snap.has_block(&rle) {
        let enc = snap.block(&rle)?.encoded_rle::<T>()?;
        return Ok(tabula_storage::EncodedBuf::new(enc).into());
    }
    let forb = format!("{base}:for");
    if snap.has_block(&forb) {
        let enc = snap.block(&forb)?.encoded_for::<T>()?;
        return Ok(tabula_storage::EncodedBuf::new(enc).into());
    }
    plain(snap.block(base)?)
}

/// Largest dictionary code in a codes buffer, computed without decoding:
/// RLE scans its run values, FOR scans packed ordinals, plain scans rows.
fn max_code(codes: &tabula_storage::ColumnBuf<u32>) -> Option<u32> {
    use tabula_storage::Encoded;
    match codes.encoded() {
        Some(Encoded::Rle { values, .. }) => values.iter().copied().max(),
        Some(enc @ Encoded::For { .. }) => {
            let v = enc.for_view().expect("For encoding always has a view");
            (0..v.len).map(|r| v.get_ordinal(r) as u32).max()
        }
        None => codes.iter().copied().max(),
    }
}

fn build_writer(cube: &SamplingCube, epoch: u64) -> Result<SnapshotWriter> {
    let table = cube.table();
    let schema_json = serde_json::to_string(table.schema())
        .map_err(|e| corrupt(format!("schema serialize failed: {e}")))?;

    let mut w = SnapshotWriter::new();
    w.set_epoch(epoch);
    w.add_block("schema", table.schema().fields().len() as u64, schema_json.as_bytes())?;

    for i in 0..table.schema().fields().len() {
        let col = table.column(i);
        let rows = col.len() as u64;
        match tabula_store::encode_column(col) {
            tabula_store::ColumnBlocks::Int64(data) | tabula_store::ColumnBlocks::Float64(data) => {
                let (suffix, bytes) = data.into_parts();
                w.add_block(&format!("col:{i}:data{suffix}"), rows, &bytes)?;
            }
            tabula_store::ColumnBlocks::Point(data) => {
                w.add_block(&format!("col:{i}:data"), rows, &data)?;
            }
            tabula_store::ColumnBlocks::Str { codes, dict } => {
                let (suffix, bytes) = codes.into_parts();
                w.add_block(&format!("col:{i}:codes{suffix}"), rows, &bytes)?;
                let dict_entries = match col {
                    Column::Str { dict, .. } => dict.len() as u64,
                    _ => unreachable!("Str blocks from non-Str column"),
                };
                w.add_block(&format!("col:{i}:dict"), dict_entries, &dict)?;
            }
        }
    }

    let cols = cube.cubed_cols();
    let cards = cardinalities(table, cols)?;
    let shifted: Vec<usize> = cards.iter().map(|&c| c + 1).collect();
    let layout = KeyLayout::from_cardinalities(&shifted);
    let cells = cube.materialized_cells() as u64;

    let (key_encoding, key_bits) = match &layout {
        Some(layout) => {
            // Packed route: one u64 per cell, ascending order.
            let mut entries: Vec<(u64, u32)> = cube
                .cube_table()
                .map(|(key, sid)| {
                    let codes: Vec<u32> =
                        key.codes.iter().map(|c| c.map_or(0, |v| v + 1)).collect();
                    (layout.encode(&codes), sid)
                })
                .collect();
            entries.sort_unstable();
            let keys: Vec<u64> = entries.iter().map(|&(k, _)| k).collect();
            let sids: Vec<u32> = entries.iter().map(|&(_, s)| s).collect();
            w.add_block("cube:keys", cells, &tabula_store::encode_u64s(&keys))?;
            w.add_block("cube:sample_ids", cells, &tabula_store::encode_u32s(&sids))?;
            let bits: Vec<u32> = (0..cols.len()).map(|i| layout.attr_bits(i)).collect();
            (ENC_PACKED, bits)
        }
        None => {
            // Flat route for >64-bit keys: n u32 slots per cell.
            let mut entries: Vec<(Vec<u32>, u32)> = cube
                .cube_table()
                .map(|(key, sid)| {
                    let codes: Vec<u32> =
                        key.codes.iter().map(|c| c.unwrap_or(FLAT_STAR)).collect();
                    (codes, sid)
                })
                .collect();
            entries.sort_unstable();
            let mut flat = Vec::with_capacity(entries.len() * cols.len());
            for (codes, _) in &entries {
                flat.extend_from_slice(codes);
            }
            let sids: Vec<u32> = entries.iter().map(|(_, s)| *s).collect();
            w.add_block("cube:flat", cells, &tabula_store::encode_u32s(&flat))?;
            w.add_block("cube:sample_ids", cells, &tabula_store::encode_u32s(&sids))?;
            (ENC_FLAT, Vec::new())
        }
    };

    let mut offsets: Vec<u64> = Vec::with_capacity(cube.persisted_samples() + 1);
    let mut sample_rows: Vec<u32> = Vec::new();
    offsets.push(0);
    for sid in 0..cube.persisted_samples() as u32 {
        sample_rows.extend_from_slice(cube.sample(sid));
        offsets.push(sample_rows.len() as u64);
    }
    w.add_block(
        "samples:offsets",
        cube.persisted_samples() as u64,
        &tabula_store::encode_u64s(&offsets),
    )?;
    w.add_block(
        "samples:rows",
        sample_rows.len() as u64,
        &tabula_store::encode_u32s(&sample_rows),
    )?;
    w.add_block(
        "global:rows",
        cube.global_sample().len() as u64,
        &tabula_store::encode_u32s(cube.global_sample()),
    )?;
    let stats_json = serde_json::to_string(cube.stats())
        .map_err(|e| corrupt(format!("stats serialize failed: {e}")))?;
    w.add_block("stats", 1, stats_json.as_bytes())?;

    let meta = CubeMeta {
        kind: KIND.to_string(),
        attrs: cube.attrs().to_vec(),
        theta: cube.theta(),
        key_encoding: key_encoding.to_string(),
        key_bits,
        cells,
        table_rows: table.len() as u64,
        samples: cube.persisted_samples() as u64,
    };
    w.set_meta(serde_json::to_string(&meta).map_err(|e| corrupt(format!("meta: {e}")))?);
    Ok(w)
}

fn restore(snap: &Snapshot) -> Result<(SamplingCube, SnapshotInfo)> {
    let meta: CubeMeta = serde_json::from_str(snap.meta())
        .map_err(|e| corrupt(format!("cube meta parse failed: {}", e.0)))?;
    if meta.kind != KIND {
        return Err(StoreError::Unsupported(format!(
            "snapshot kind {:?} is not a sampling cube",
            meta.kind
        ))
        .into());
    }

    // Table: schema + columns. Column payloads are *viewed* in place —
    // each column holds a refcounted slice into the snapshot buffer, so
    // restoring a multi-hundred-MB table copies no row data at all (the
    // buffer stays alive as long as any column references it).
    let schema: Schema = serde_json::from_str(snap.block("schema")?.utf8()?)
        .map_err(|e| corrupt(format!("schema parse failed: {}", e.0)))?;
    let mut columns = Vec::with_capacity(schema.fields().len());
    for (i, field) in schema.fields().iter().enumerate() {
        let col = match field.ty {
            ColumnType::Int64 => Column::Int64(restore_buf(snap, &format!("col:{i}:data"), |b| {
                Ok(b.shared_i64s()?.into())
            })?),
            ColumnType::Float64 => {
                Column::Float64(restore_buf(snap, &format!("col:{i}:data"), |b| {
                    Ok(b.shared_f64s()?.into())
                })?)
            }
            ColumnType::Point => {
                Column::Point(snap.block(&format!("col:{i}:data"))?.shared_points()?.into())
            }
            ColumnType::Str => {
                let base = format!("col:{i}:codes");
                let codes = restore_buf(snap, &base, |b| Ok(b.shared_u32s()?.into()))?;
                let dict = snap.block(&format!("col:{i}:dict"))?.dict()?;
                let n = dict.len() as u32;
                // Encoded code blocks are bounds-checked on the encoded
                // form — run values or packed ordinals — never decoded.
                if let Some(bad) = max_code(&codes).filter(|&c| c >= n) {
                    return Err(bad_block(
                        &base,
                        format!("code {bad} out of range for dictionary of {n} entries"),
                    ));
                }
                Column::Str { codes, dict }
            }
        };
        columns.push(col);
    }
    let table = Arc::new(Table::from_columns(schema, columns)?);
    if table.len() as u64 != meta.table_rows {
        return Err(corrupt(format!(
            "meta claims {} table rows, columns hold {}",
            meta.table_rows,
            table.len()
        )));
    }

    // Cubed attribute resolution + key layout verification.
    let cols: Vec<usize> = meta
        .attrs
        .iter()
        .map(|a| table.schema().index_of(a).map_err(crate::CoreError::from))
        .collect::<Result<_>>()?;
    let cards = cardinalities(&table, &cols)?;
    let n_attrs = cols.len();
    let sample_count = meta.samples;

    let sample_ids_view = snap.block("cube:sample_ids")?;
    let sids = sample_ids_view.u32s()?;
    let mut cube_table: FxHashMap<CellKey, u32> = FxHashMap::default();
    cube_table.reserve(sids.len());

    let mut insert = |key: CellKey, sid: u32| -> Result<()> {
        if u64::from(sid) >= sample_count {
            return Err(bad_block(
                "cube:sample_ids",
                format!("sample id {sid} out of range for {sample_count} samples"),
            ));
        }
        if cube_table.insert(key, sid).is_some() {
            return Err(bad_block("cube:keys", "duplicate cell key"));
        }
        Ok(())
    };

    match meta.key_encoding.as_str() {
        ENC_PACKED => {
            let shifted: Vec<usize> = cards.iter().map(|&c| c + 1).collect();
            let layout = KeyLayout::from_cardinalities(&shifted).ok_or_else(|| {
                bad_block("cube:keys", "packed64 encoding but recomputed key exceeds 64 bits")
            })?;
            let bits: Vec<u32> = (0..n_attrs).map(|i| layout.attr_bits(i)).collect();
            if bits != meta.key_bits {
                return Err(bad_block(
                    "cube:keys",
                    format!(
                        "key bit widths {:?} in manifest do not match widths {bits:?} \
                         recomputed from dictionary cardinalities",
                        meta.key_bits
                    ),
                ));
            }
            let keys = snap.block("cube:keys")?.u64s()?;
            if keys.len() != sids.len() {
                return Err(bad_block(
                    "cube:keys",
                    format!("{} keys vs {} sample ids", keys.len(), sids.len()),
                ));
            }
            let mut decoded = Vec::with_capacity(n_attrs);
            for (&k, &sid) in keys.iter().zip(sids) {
                layout.decode_into(k, &mut decoded);
                let mut codes = Vec::with_capacity(n_attrs);
                for (i, &v) in decoded.iter().enumerate() {
                    if v == 0 {
                        codes.push(None);
                    } else if ((v - 1) as usize) < cards[i] {
                        codes.push(Some(v - 1));
                    } else {
                        return Err(bad_block(
                            "cube:keys",
                            format!(
                                "code {} out of range for attribute {:?} of cardinality {}",
                                v - 1,
                                meta.attrs[i],
                                cards[i]
                            ),
                        ));
                    }
                }
                insert(CellKey { codes }, sid)?;
            }
        }
        ENC_FLAT => {
            let flat = snap.block("cube:flat")?.u32s()?;
            if n_attrs == 0 || flat.len() != sids.len() * n_attrs {
                return Err(bad_block(
                    "cube:flat",
                    format!(
                        "{} flat words do not tile {} cells × {n_attrs} attributes",
                        flat.len(),
                        sids.len()
                    ),
                ));
            }
            for (cell, &sid) in flat.chunks_exact(n_attrs).zip(sids) {
                let mut codes = Vec::with_capacity(n_attrs);
                for (i, &v) in cell.iter().enumerate() {
                    if v == FLAT_STAR {
                        codes.push(None);
                    } else if (v as usize) < cards[i] {
                        codes.push(Some(v));
                    } else {
                        return Err(bad_block(
                            "cube:flat",
                            format!(
                                "code {v} out of range for attribute {:?} of cardinality {}",
                                meta.attrs[i], cards[i]
                            ),
                        ));
                    }
                }
                insert(CellKey { codes }, sid)?;
            }
        }
        other => {
            return Err(StoreError::Unsupported(format!("unknown key encoding {other:?}")).into())
        }
    }
    if cube_table.len() as u64 != meta.cells {
        return Err(corrupt(format!(
            "meta claims {} cells, cube table holds {}",
            meta.cells,
            cube_table.len()
        )));
    }

    // Sample tables.
    let offsets = snap.block("samples:offsets")?.u64s()?;
    let rows_view = snap.block("samples:rows")?;
    let all_rows = rows_view.u32s()?;
    if offsets.len() as u64 != sample_count + 1 || offsets.first() != Some(&0) {
        return Err(bad_block(
            "samples:offsets",
            format!(
                "{} offsets for {sample_count} samples (want count + 1, first 0)",
                offsets.len()
            ),
        ));
    }
    if offsets.last() != Some(&(all_rows.len() as u64)) {
        return Err(bad_block(
            "samples:offsets",
            format!(
                "last offset {:?} does not cover {} sample rows",
                offsets.last(),
                all_rows.len()
            ),
        ));
    }
    let table_len = table.len() as u32;
    let check_rows = |region: &str, rows: &[u32]| -> Result<()> {
        if let Some(&bad) = rows.iter().find(|&&r| r >= table_len) {
            return Err(bad_block(
                region,
                format!("row id {bad} out of range for table of {table_len} rows"),
            ));
        }
        Ok(())
    };
    check_rows("samples:rows", all_rows)?;
    let mut samples: Vec<Arc<Vec<RowId>>> = Vec::with_capacity(sample_count as usize);
    for w in offsets.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi < lo {
            return Err(bad_block(
                "samples:offsets",
                format!("offsets not monotonic: {lo} then {hi}"),
            ));
        }
        samples.push(Arc::new(all_rows[lo as usize..hi as usize].to_vec()));
    }
    let global_view = snap.block("global:rows")?;
    let global = global_view.u32s()?;
    check_rows("global:rows", global)?;
    let global_sample = Arc::new(global.to_vec());

    let stats: BuildStats = serde_json::from_str(snap.block("stats")?.utf8()?)
        .map_err(|e| corrupt(format!("stats parse failed: {}", e.0)))?;

    let info =
        SnapshotInfo { epoch: snap.epoch(), file_bytes: snap.file_len(), cells: cube_table.len() };
    let cube = SamplingCube::new(
        table,
        meta.attrs,
        cols,
        meta.theta,
        cube_table,
        samples,
        global_sample,
        stats,
    );
    Ok((cube, info))
}

impl SamplingCube {
    /// Freeze this cube into a snapshot file at `path`, stamping `epoch`
    /// into the manifest. Returns the byte count written.
    pub fn write_snapshot(&self, path: &Path, epoch: u64) -> Result<u64> {
        Ok(build_writer(self, epoch)?.write_to(path)?)
    }

    /// Freeze this cube into an in-memory snapshot image (the file bytes,
    /// verbatim). Used by the differential-test snapshot lane.
    pub fn snapshot_bytes(&self, epoch: u64) -> Result<Vec<u8>> {
        Ok(build_writer(self, epoch)?.finish()?)
    }

    /// Thaw a cube from a snapshot file. All store-level checksums and
    /// every cube-level invariant are verified before this returns.
    pub fn from_snapshot(path: &Path) -> Result<(SamplingCube, SnapshotInfo)> {
        let snap = Snapshot::open(path)?;
        restore(&snap)
    }

    /// Thaw a cube from an in-memory snapshot image.
    pub fn from_snapshot_bytes(bytes: Vec<u8>) -> Result<(SamplingCube, SnapshotInfo)> {
        let snap = Snapshot::from_bytes(bytes)?;
        restore(&snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MaterializationMode, SamplingCubeBuilder};
    use crate::loss::MeanLoss;
    use tabula_data::example_dcm_table;
    use tabula_storage::Predicate;

    fn cube() -> SamplingCube {
        let t = Arc::new(example_dcm_table());
        let fare = t.schema().index_of("fare").unwrap();
        SamplingCubeBuilder::new(Arc::clone(&t), &["D", "C", "M"], MeanLoss::new(fare), 0.10)
            .seed(1)
            .mode(MaterializationMode::Tabula)
            .build()
            .unwrap()
    }

    #[test]
    fn snapshot_round_trip_preserves_cube_and_answers() {
        let c = cube();
        let bytes = c.snapshot_bytes(7).unwrap();
        let (back, info) = SamplingCube::from_snapshot_bytes(bytes).unwrap();
        assert_eq!(info.epoch, 7);
        assert_eq!(info.cells, c.materialized_cells());
        assert_eq!(back.materialized_cells(), c.materialized_cells());
        assert_eq!(back.persisted_samples(), c.persisted_samples());
        assert_eq!(back.global_sample(), c.global_sample());
        assert_eq!(back.table().len(), c.table().len());
        // Every cell answers identically, sample ids included.
        for (key, sid) in c.cube_table() {
            assert_eq!(back.query_cell(key).rows, c.query_cell(key).rows);
            assert_eq!(back.cube_table().find(|(k, _)| *k == key).unwrap().1, sid);
        }
        // Predicate path agrees too.
        for pred in [Predicate::eq("M", "cash"), Predicate::eq("M", "dispute"), Predicate::all()] {
            let a = c.query(&pred).unwrap();
            let b = back.query(&pred).unwrap();
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.provenance, b.provenance);
        }
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let c = cube();
        assert_eq!(c.snapshot_bytes(3).unwrap(), c.snapshot_bytes(3).unwrap());
        // A cube rebuilt from the snapshot re-freezes to identical bytes:
        // snapshot content is a pure function of cube content.
        let bytes = c.snapshot_bytes(3).unwrap();
        let (back, _) = SamplingCube::from_snapshot_bytes(bytes.clone()).unwrap();
        assert_eq!(back.snapshot_bytes(3).unwrap(), bytes);
    }

    /// The example rows, each repeated `reps` times consecutively — long
    /// runs in every cubed column — with every column frozen under `mode`.
    fn repeated_table(reps: usize, mode: tabula_storage::EncodingMode) -> Arc<Table> {
        let t = example_dcm_table();
        let cols = (0..t.schema().fields().len())
            .map(|i| {
                let rep = |n: usize| (0..n).flat_map(|r| std::iter::repeat_n(r, reps));
                let mut col = match t.column(i) {
                    Column::Int64(b) => {
                        Column::Int64(rep(b.len()).map(|r| b[r]).collect::<Vec<_>>().into())
                    }
                    Column::Float64(b) => {
                        Column::Float64(rep(b.len()).map(|r| b[r]).collect::<Vec<_>>().into())
                    }
                    Column::Str { codes, dict } => Column::Str {
                        codes: rep(codes.len()).map(|r| codes[r]).collect::<Vec<_>>().into(),
                        dict: dict.clone(),
                    },
                    Column::Point(b) => {
                        Column::Point(rep(b.len()).map(|r| b[r]).collect::<Vec<_>>().into())
                    }
                };
                col.encode_for_freeze(mode);
                col
            })
            .collect();
        Arc::new(Table::from_columns(t.schema().clone(), cols).unwrap())
    }

    fn cube_over(t: Arc<Table>) -> SamplingCube {
        let fare = t.schema().index_of("fare").unwrap();
        SamplingCubeBuilder::new(Arc::clone(&t), &["D", "C", "M"], MeanLoss::new(fare), 0.10)
            .seed(1)
            .mode(MaterializationMode::Tabula)
            .build()
            .unwrap()
    }

    #[test]
    fn encoded_snapshot_shrinks_and_restores_byte_identically() {
        let plain = cube_over(repeated_table(40, tabula_storage::EncodingMode::Off));
        let forced = cube_over(repeated_table(40, tabula_storage::EncodingMode::Force));
        let pb = plain.snapshot_bytes(3).unwrap();
        let eb = forced.snapshot_bytes(3).unwrap();

        // Clustered runs compress well past the CI gate's 30% floor.
        assert!(
            (eb.len() as f64) <= 0.7 * pb.len() as f64,
            "encoded snapshot is {} bytes, plain is {}",
            eb.len(),
            pb.len()
        );

        // The encoded snapshot persists encoded blocks, suffix-named.
        let snap = Snapshot::from_bytes(eb.clone()).unwrap();
        let ncols = plain.table().schema().fields().len();
        let encoded_blocks = (0..ncols)
            .flat_map(|i| {
                ["data", "codes"].into_iter().flat_map(move |kind| {
                    [":rle", ":for"].into_iter().map(move |s| format!("col:{i}:{kind}{s}"))
                })
            })
            .filter(|name| snap.has_block(name))
            .count();
        assert!(encoded_blocks > 0, "forced cube must persist encoded column blocks");

        // Restore → re-freeze is byte-identical: the writer persists each
        // column's *current* representation, never re-choosing.
        let (back, _) = SamplingCube::from_snapshot_bytes(eb.clone()).unwrap();
        assert_eq!(back.snapshot_bytes(3).unwrap(), eb);

        // Restored columns stay encoded — the snapshot's packed payloads
        // are viewed in place, not expanded on load.
        let restored = back.table();
        let any_encoded = (0..ncols).any(|i| match restored.column(i) {
            Column::Int64(b) => b.encoded().is_some(),
            Column::Float64(b) => b.encoded().is_some(),
            Column::Str { codes, .. } => codes.encoded().is_some(),
            Column::Point(_) => false,
        });
        assert!(any_encoded, "restored columns must keep their encoded form");

        // Encoding is physical only: the plain and forced cubes agree on
        // every materialized cell and every served answer.
        let plain_cells: Vec<_> = plain.cube_table().collect();
        let forced_cells: Vec<_> = forced.cube_table().collect();
        assert_eq!(plain_cells, forced_cells);
        for pred in [Predicate::eq("M", "cash"), Predicate::eq("M", "dispute"), Predicate::all()] {
            let a = plain.query(&pred).unwrap();
            let b = forced.query(&pred).unwrap();
            let c = back.query(&pred).unwrap();
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.rows, c.rows);
            assert_eq!(a.provenance, c.provenance);
        }
    }

    #[test]
    fn snapshot_file_round_trip() {
        let c = cube();
        let dir = std::env::temp_dir().join(format!("tabula-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cube.tabsnap");
        let written = c.write_snapshot(&path, 1).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let (back, info) = SamplingCube::from_snapshot(&path).unwrap();
        assert_eq!(info.file_bytes, written);
        assert_eq!(back.materialized_cells(), c.materialized_cells());
        std::fs::remove_dir_all(&dir).ok();
    }
}
