//! The sharded LRU answer cache: materialized sample tables keyed by
//! compiled cell.
//!
//! Repeat zoom/pan queries are the common case on a dashboard (a user
//! panning back and forth re-issues the same cells), and for those the
//! expensive step is not the probe but the `Table::take` materialization.
//! The cache stores the finished [`Table`] (behind an `Arc`, so a hit is
//! one clone of a pointer) and the answer's row ids + provenance.
//!
//! **Sharding.** A power-of-two number of shards, each behind its own
//! `Mutex`; a key's shard is picked from its Fx hash, so concurrent
//! clients rarely contend on the same lock. Per-shard state is a slab of
//! intrusively doubly-linked nodes (`usize` indices, no `Rc` juggling)
//! plus an `FxHashMap<CompiledCell, slot>`; LRU eviction pops the list
//! tail.
//!
//! **Capacity** is byte-based: `TABULA_CACHE_MB` megabytes (default 64)
//! split evenly across shards, each entry charged its materialized
//! table's heap bytes. `TABULA_CACHE_MB=0` (or `TABULA_CACHE_BYPASS=1`)
//! disables caching entirely.
//!
//! **Invalidation** is epoch-based, and the epoch an entry is valid
//! under is supplied by the *caller*, not read from the cache's clock:
//! every cube generation carries the epoch it was installed under (the
//! server bumps the cache clock and stamps the generation inside the
//! same write-lock critical section), and both [`AnswerCache::get`] and
//! [`AnswerCache::insert`] take that generation epoch explicitly. An
//! answer computed against generation N can therefore only ever be
//! inserted and matched under N's epoch — a query that races with a
//! refresh (reads generation N, inserts after the swap) stamps its entry
//! N, which no generation-N+1 reader can match, so a refresh can never
//! leak a stale cached answer. Invalidation itself is O(1) and takes no
//! locks; mismatched entries are reclaimed lazily when an equal-or-newer
//! reader trips over them.

use crate::compile::CompiledCell;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tabula_core::SampleProvenance;
use tabula_storage::fx::FxHasher;
use tabula_storage::{FxHashMap, RowId, Table};

/// A cached, fully materialized query answer.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    /// Sample row ids (into the raw table of the generation that produced
    /// them).
    pub rows: Arc<Vec<RowId>>,
    /// Which cube path produced the rows.
    pub provenance: SampleProvenance,
    /// The materialized sample table shipped to the dashboard.
    pub table: Arc<Table>,
}

impl CachedAnswer {
    fn bytes(&self) -> usize {
        // Charge the materialized tuples plus the row-id list plus a flat
        // per-entry overhead for the key, node and map slot.
        self.table.heap_bytes() + self.rows.len() * std::mem::size_of::<RowId>() + 256
    }

    /// The bytes this answer is charged against the cache capacity —
    /// what a trace reports as "bytes touched" on a cache hit.
    pub fn heap_bytes(&self) -> usize {
        self.bytes()
    }
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node {
    key: CompiledCell,
    value: CachedAnswer,
    epoch: u64,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// One shard: slab + intrusive LRU list + key map, all under one mutex.
#[derive(Debug, Default)]
struct Shard {
    map: FxHashMap<CompiledCell, usize>,
    slab: Vec<Option<Node>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    bytes: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: FxHashMap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = {
            let n = self.slab[slot].as_ref().unwrap();
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slab[p].as_mut().unwrap().next = next,
        }
        match next {
            NIL => self.tail = prev,
            x => self.slab[x].as_mut().unwrap().prev = prev,
        }
    }

    fn push_front(&mut self, slot: usize) {
        {
            let n = self.slab[slot].as_mut().unwrap();
            n.prev = NIL;
            n.next = self.head;
        }
        if self.head != NIL {
            self.slab[self.head].as_mut().unwrap().prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Remove `slot` entirely, returning its freed byte count.
    fn remove(&mut self, slot: usize) -> usize {
        self.unlink(slot);
        let node = self.slab[slot].take().unwrap();
        self.map.remove(&node.key);
        self.free.push(slot);
        self.bytes -= node.bytes;
        node.bytes
    }
}

/// Sharded, epoch-invalidated LRU cache of materialized answers.
#[derive(Debug)]
pub struct AnswerCache {
    shards: Vec<Mutex<Shard>>,
    shard_mask: usize,
    per_shard_cap: usize,
    epoch: AtomicU64,
}

/// Outcome of a cache probe, for the server's metrics.
pub enum CacheLookup {
    /// Fresh entry under the current epoch.
    Hit(CachedAnswer),
    /// Absent (or stale — the entry was dropped).
    Miss,
    /// Caching disabled; the server should skip inserts too.
    Bypass,
}

impl AnswerCache {
    /// A cache with `capacity_bytes` total capacity across `shards`
    /// shards (`shards` is rounded up to a power of two). Zero capacity
    /// means bypass.
    pub fn new(capacity_bytes: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, 256).next_power_of_two();
        AnswerCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_mask: shards - 1,
            per_shard_cap: capacity_bytes / shards,
            epoch: AtomicU64::new(0),
        }
    }

    /// A cache configured from the environment: `TABULA_CACHE_MB`
    /// megabytes (default 64), bypassed entirely when that is 0 or
    /// `TABULA_CACHE_BYPASS` is set to anything but `0`. Shard count
    /// scales with the parallel pool so client threads spread across
    /// locks.
    pub fn from_env() -> Self {
        let mb = std::env::var("TABULA_CACHE_MB")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(64);
        let bypass = std::env::var("TABULA_CACHE_BYPASS").map(|v| v != "0").unwrap_or(false);
        let capacity = if bypass { 0 } else { mb * (1 << 20) };
        AnswerCache::new(capacity, tabula_par::threads() * 2)
    }

    /// Whether the cache is a no-op.
    pub fn is_bypass(&self) -> bool {
        self.per_shard_cap == 0
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The current invalidation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advance the invalidation clock, returning the new epoch. Entries
    /// stamped with older epochs are treated as misses and reclaimed
    /// lazily; the caller stamps the cube generation it is installing
    /// with the returned value (inside the same critical section as the
    /// generation swap) so lookups and inserts stay tied to the
    /// generation they were computed from.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    #[inline]
    fn shard_for(&self, key: &CompiledCell) -> usize {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        // Shard on the high bits: the map inside the shard uses the low
        // bits, and reusing them would cluster each shard's keys into a
        // fraction of its buckets.
        (h.finish() >> 48) as usize & self.shard_mask
    }

    /// Look up `key` as seen from the generation installed under
    /// `epoch`, refreshing the entry's recency on a hit. Only an entry
    /// stamped with exactly `epoch` is a hit; an older entry is removed
    /// (lazy reclamation), a newer one — inserted by a reader of a
    /// fresher generation — is left in place for that generation's
    /// readers.
    pub fn get(&self, key: &CompiledCell, epoch: u64) -> CacheLookup {
        if self.is_bypass() {
            return CacheLookup::Bypass;
        }
        let mut shard = self.shards[self.shard_for(key)].lock().unwrap();
        let Some(&slot) = shard.map.get(key) else {
            return CacheLookup::Miss;
        };
        let entry_epoch = shard.slab[slot].as_ref().unwrap().epoch;
        if entry_epoch != epoch {
            if entry_epoch < epoch {
                shard.remove(slot);
            }
            return CacheLookup::Miss;
        }
        shard.unlink(slot);
        shard.push_front(slot);
        CacheLookup::Hit(shard.slab[slot].as_ref().unwrap().value.clone())
    }

    /// Insert `value` under `key`, stamped with the epoch of the
    /// generation the answer was computed from, evicting LRU entries
    /// while over capacity. Returns the number of capacity evictions
    /// performed (stale-epoch reclamations are not counted).
    ///
    /// The entry can only ever satisfy a [`get`](AnswerCache::get) that
    /// passes the same `epoch` — so an insert that races with a
    /// generation swap parks an entry no reader of the new generation
    /// can match, rather than poisoning the fresh epoch.
    pub fn insert(&self, key: CompiledCell, value: CachedAnswer, epoch: u64) -> usize {
        if self.is_bypass() {
            return 0;
        }
        if epoch < self.epoch() {
            // The caller's generation has already been superseded: the
            // entry could only serve in-flight stragglers of that
            // generation, so don't spend capacity on it. Best-effort —
            // a bump landing after this check is still harmless, since
            // the stamp below keeps the entry invisible to new readers.
            return 0;
        }
        let bytes = value.bytes();
        if bytes > self.per_shard_cap {
            // Larger than a whole shard: never cacheable.
            return 0;
        }
        let mut shard = self.shards[self.shard_for(&key)].lock().unwrap();
        if let Some(&slot) = shard.map.get(&key) {
            if shard.slab[slot].as_ref().unwrap().epoch > epoch {
                // A fresher generation already cached this key; keep it.
                return 0;
            }
            // Replace in place (same key raced in from another client, or
            // a stale-epoch leftover).
            shard.remove(slot);
        }
        let mut evictions = 0;
        while shard.bytes + bytes > self.per_shard_cap {
            let tail = shard.tail;
            debug_assert_ne!(tail, NIL, "entry fits per-shard cap, so eviction must terminate");
            let stale = shard.slab[tail].as_ref().unwrap().epoch != epoch;
            shard.remove(tail);
            if !stale {
                evictions += 1;
            }
        }
        let node = Node { key, value, epoch, bytes, prev: NIL, next: NIL };
        let slot = match shard.free.pop() {
            Some(s) => {
                shard.slab[s] = Some(node);
                s
            }
            None => {
                shard.slab.push(Some(node));
                shard.slab.len() - 1
            }
        };
        shard.map.insert(key, slot);
        shard.push_front(slot);
        shard.bytes += bytes;
        evictions
    }

    /// Total live entries across shards (diagnostics; takes every lock).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    /// Whether no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cached bytes across shards (diagnostics).
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_storage::schema::{Field, Schema};
    use tabula_storage::{ColumnType, TableBuilder};

    fn answer(rows: usize) -> CachedAnswer {
        let schema = Schema::new(vec![Field::new("x", ColumnType::Int64)]);
        let mut b = TableBuilder::new(schema);
        for i in 0..rows {
            b.push_row(&[(i as i64).into()]).unwrap();
        }
        CachedAnswer {
            rows: Arc::new((0..rows as RowId).collect()),
            provenance: SampleProvenance::Global,
            table: Arc::new(b.finish()),
        }
    }

    fn key(code: u32) -> CompiledCell {
        let mut c = CompiledCell::all(2);
        c.set(0, code);
        c
    }

    #[test]
    fn hit_after_insert_and_miss_after_epoch_bump() {
        let cache = AnswerCache::new(1 << 20, 4);
        let e0 = cache.epoch();
        assert!(matches!(cache.get(&key(1), e0), CacheLookup::Miss));
        cache.insert(key(1), answer(10), e0);
        match cache.get(&key(1), e0) {
            CacheLookup::Hit(a) => assert_eq!(a.rows.len(), 10),
            _ => panic!("expected hit"),
        }
        let e1 = cache.advance_epoch();
        assert_eq!(e1, e0 + 1);
        assert!(matches!(cache.get(&key(1), e1), CacheLookup::Miss));
        // Lazy reclamation removed the stale entry.
        assert!(cache.is_empty());
    }

    #[test]
    fn late_insert_stamped_with_old_epoch_never_serves_under_new_epoch() {
        // The refresh race: a query computed its answer against
        // generation e0, the swap + bump landed, and only then did the
        // insert run. The entry must stay invisible to e1 readers.
        let cache = AnswerCache::new(1 << 20, 1);
        let e0 = cache.epoch();
        let e1 = cache.advance_epoch();
        cache.insert(key(1), answer(10), e0);
        assert!(matches!(cache.get(&key(1), e1), CacheLookup::Miss));
        // (The best-effort freshness check refused the insert outright.)
        assert!(cache.is_empty());
    }

    #[test]
    fn old_generation_reader_misses_but_does_not_reclaim_fresh_entries() {
        // The mirror race: a straggler still holding generation e0 probes
        // a key a fresher reader already cached under e1. It must miss —
        // its answer would come from a different generation — without
        // destroying the entry the e1 readers rely on.
        let cache = AnswerCache::new(1 << 20, 1);
        let e0 = cache.epoch();
        let e1 = cache.advance_epoch();
        cache.insert(key(2), answer(10), e1);
        assert!(matches!(cache.get(&key(2), e0), CacheLookup::Miss));
        assert!(matches!(cache.get(&key(2), e1), CacheLookup::Hit(_)));
        // And a straggler's insert must not clobber the fresher entry.
        cache.insert(key(2), answer(3), e0);
        match cache.get(&key(2), e1) {
            CacheLookup::Hit(a) => assert_eq!(a.rows.len(), 10),
            _ => panic!("fresh entry must survive the stale insert"),
        }
    }

    #[test]
    fn lru_evicts_oldest_first() {
        // Single shard, capacity for ~3 small answers.
        let per = answer(10).bytes();
        let cache = AnswerCache::new(per * 3, 1);
        let e = cache.epoch();
        cache.insert(key(1), answer(10), e);
        cache.insert(key(2), answer(10), e);
        cache.insert(key(3), answer(10), e);
        // Touch key 1 so key 2 becomes LRU.
        assert!(matches!(cache.get(&key(1), e), CacheLookup::Hit(_)));
        let evicted = cache.insert(key(4), answer(10), e);
        assert_eq!(evicted, 1);
        assert!(matches!(cache.get(&key(2), e), CacheLookup::Miss));
        assert!(matches!(cache.get(&key(1), e), CacheLookup::Hit(_)));
        assert!(matches!(cache.get(&key(3), e), CacheLookup::Hit(_)));
        assert!(matches!(cache.get(&key(4), e), CacheLookup::Hit(_)));
        assert!(cache.bytes() <= per * 3);
    }

    #[test]
    fn zero_capacity_bypasses() {
        let cache = AnswerCache::new(0, 8);
        assert!(cache.is_bypass());
        assert!(matches!(cache.get(&key(1), 0), CacheLookup::Bypass));
        cache.insert(key(1), answer(10), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn oversized_entry_is_refused_without_eviction() {
        let small = answer(2).bytes();
        let cache = AnswerCache::new(small, 1);
        let e = cache.epoch();
        cache.insert(key(1), answer(2), e);
        assert!(matches!(cache.get(&key(1), e), CacheLookup::Hit(_)));
        // A giant entry must not wipe the shard just to fail anyway.
        assert_eq!(cache.insert(key(2), answer(10_000), e), 0);
        assert!(matches!(cache.get(&key(1), e), CacheLookup::Hit(_)));
        assert!(matches!(cache.get(&key(2), e), CacheLookup::Miss));
    }

    #[test]
    fn concurrent_hammering_stays_consistent() {
        let cache = Arc::new(AnswerCache::new(1 << 18, 4));
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..500u32 {
                        // Each iteration models a query pinned to the
                        // generation (epoch) it observed at its start.
                        let e = cache.epoch();
                        let k = key((t * 7 + i) % 32);
                        match cache.get(&k, e) {
                            CacheLookup::Hit(a) => assert_eq!(a.rows.len(), 5),
                            _ => {
                                cache.insert(k, answer(5), e);
                            }
                        }
                        if i % 100 == 99 && t == 0 {
                            cache.advance_epoch();
                        }
                    }
                });
            }
        });
        // All remaining entries must be coherent.
        let e = cache.epoch();
        for c in 0..32 {
            if let CacheLookup::Hit(a) = cache.get(&key(c), e) {
                assert_eq!(a.rows.len(), 5);
                assert_eq!(a.table.len(), 5);
            }
        }
    }
}
