//! **Figure 9** — memory footprint of the materialized sampling cube
//! (global sample / cube table / sample table) as θ shrinks, for three
//! loss functions (9a–c) and versus the number of cubed attributes (9d);
//! Tabula\* (no sample selection) shown alongside for the selection-win
//! comparison the paper plots in log scale.
//!
//! ```bash
//! cargo run --release -p tabula-bench --bin fig09_memory -- heatmap|mean|regression|attrs
//! ```

use std::sync::Arc;
use tabula_bench::{default_rows, fmt_bytes, taxi_table, SEED};
use tabula_core::loss::{HeatmapLoss, HistogramLoss, MeanLoss, Metric, RegressionLoss};
use tabula_core::{AccuracyLoss, MaterializationMode, SamplingCubeBuilder};
use tabula_data::{meters_to_norm, CUBED_ATTRIBUTES};
use tabula_storage::Table;

fn report<L: AccuracyLoss + Clone>(
    table: &Arc<Table>,
    attrs: &[&str],
    loss: L,
    theta: f64,
    theta_label: &str,
) {
    let build = |mode| {
        SamplingCubeBuilder::new(Arc::clone(table), attrs, loss.clone(), theta)
            .mode(mode)
            .seed(SEED)
            .build()
            .expect("build succeeds")
    };
    let tabula = build(MaterializationMode::Tabula);
    let star = build(MaterializationMode::TabulaStar);
    let m = tabula.memory_breakdown();
    let m_star = star.memory_breakdown();
    println!(
        "{theta_label:>12} {:>12} {:>12} {:>12} {:>12} {:>14}",
        fmt_bytes(m.global_bytes),
        fmt_bytes(m.cube_table_bytes),
        fmt_bytes(m.sample_table_bytes),
        fmt_bytes(m.total()),
        fmt_bytes(m_star.total()),
    );
}

fn header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "theta", "global", "cube table", "sample tbl", "Tabula", "Tabula*"
    );
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let rows = default_rows();
    let table = taxi_table(rows);
    let attrs5: Vec<&str> = CUBED_ATTRIBUTES[..5].to_vec();
    println!("# Figure 9 | rows = {rows}");

    let pickup = table.schema().index_of("pickup").unwrap();
    let fare = table.schema().index_of("fare_amount").unwrap();
    let tip = table.schema().index_of("tip_amount").unwrap();

    if which == "all" || which == "heatmap" {
        header("Fig 9a: memory vs θ — geospatial heatmap-aware loss");
        for meters in [2000.0, 1000.0, 500.0, 250.0] {
            report(
                &table,
                &attrs5,
                HeatmapLoss::new(pickup, Metric::Euclidean),
                meters_to_norm(meters),
                &format!("{meters}m"),
            );
        }
    }
    if which == "all" || which == "mean" {
        header("Fig 9b: memory vs θ — statistical mean loss");
        for pct in [10.0, 5.0, 2.5, 1.0] {
            report(&table, &attrs5, MeanLoss::new(fare), pct / 100.0, &format!("{pct}%"));
        }
    }
    if which == "all" || which == "regression" {
        header("Fig 9c: memory vs θ — linear regression loss");
        for degrees in [10.0, 5.0, 2.5, 1.0] {
            report(
                &table,
                &attrs5,
                RegressionLoss::new(fare, tip),
                degrees,
                &format!("{degrees}°"),
            );
        }
    }
    if which == "all" || which == "attrs" {
        header("Fig 9d: memory vs #attributes — histogram loss, θ = $0.5");
        for n in 4..=7 {
            let attrs: Vec<&str> = CUBED_ATTRIBUTES[..n].to_vec();
            report(&table, &attrs, HistogramLoss::new(fare), 0.5, &format!("{n} attrs"));
        }
    }
}
