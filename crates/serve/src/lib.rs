//! # tabula-serve
//!
//! The high-throughput concurrent query-serving layer over the
//! materialized sampling cube.
//!
//! `tabula-core` optimizes the cube's *build* side; this crate optimizes
//! the *serving* side — the paper's actual value proposition (dashboard
//! zoom/pan queries answered in milliseconds, "heavy traffic from
//! millions of users"). `SamplingCube::query` is correct but cold: it
//! allocates a fresh `CellKey` per query, probes one global hash map, and
//! re-materializes the sample table on every hit. This crate separates
//! the write-time structure from a read-optimized serving structure:
//!
//! * [`compile`] — a predicate compiler resolving a `Predicate` into a
//!   stack-allocated [`CompiledCell`] with zero heap allocation per
//!   query, short-circuiting empty-domain queries before any probe;
//! * [`index`] — a frozen [`ServeIndex`] built once per cube generation:
//!   cuboid-partitioned dense arrays probed by branch-free binary search,
//!   or direct slot indexing when a cuboid's key domain is small;
//! * [`cache`] — a sharded LRU [`AnswerCache`] of fully materialized
//!   answers (capacity `TABULA_CACHE_MB`, bypass `TABULA_CACHE_BYPASS`),
//!   invalidated in O(1) by epoch bump on refresh;
//! * [`server`] — the [`Server`] façade gluing the three together, with
//!   `serve.hits` / `serve.misses` / `serve.evictions` counters and a
//!   `serve.probe_ns` histogram in the `tabula-obs` registry, and an
//!   [`install`](Server::install)/[`refresh`](Server::refresh) path that
//!   swaps generations without serving a stale cached answer.
//!
//! Answers are byte-identical to [`SamplingCube::query`] at any thread
//! count and any cache size; the differential lane in `tabula-check`
//! enforces this continuously.
//!
//! [`SamplingCube::query`]: tabula_core::SamplingCube::query

pub mod cache;
pub mod compile;
pub mod index;
pub mod server;

pub use cache::{AnswerCache, CacheLookup, CachedAnswer};
pub use compile::{compile_predicate, CompiledCell, MAX_CUBED_ATTRS};
pub use index::{IndexLayout, ServeIndex};
pub use server::{
    ServeAnswer, Server, SERVE_EVICTIONS, SERVE_HITS, SERVE_MISSES, SERVE_PROBE_NS, SERVE_QUERY_NS,
};
