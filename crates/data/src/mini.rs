//! The paper's tiny running example: trip distance bins (D), passenger
//! count (C) and payment method (M). Used by Table I / Figure 5
//! illustrations, doc examples and unit tests across the workspace.

use tabula_storage::{ColumnType, Field, Point, Schema, Table, TableBuilder};

/// Column names of the mini table, in order.
pub const MINI_COLUMNS: [&str; 6] = ["D", "C", "M", "fare", "tip", "pickup"];

/// Build the running-example table.
///
/// `D` is the binned trip distance (`"[0,5)"`, `"[5,10)"`, ...), `C` the
/// passenger count, `M` the payment method — the three cubed attributes of
/// the paper's Figures 3–6 — plus a fare, a tip, and a pickup point so all
/// four built-in loss functions have something to measure.
pub fn example_dcm_table() -> Table {
    let schema = Schema::new(vec![
        Field::new("D", ColumnType::Str),
        Field::new("C", ColumnType::Int64),
        Field::new("M", ColumnType::Str),
        Field::new("fare", ColumnType::Float64),
        Field::new("tip", ColumnType::Float64),
        Field::new("pickup", ColumnType::Point),
    ]);
    let mut b = TableBuilder::new(schema);
    // (D, C, M, fare, tip, x, y) — a small but deliberately skewed mix:
    // short cash trips cluster spatially at (0.2, 0.2); dispute trips sit
    // far away at (0.9, 0.9) with outlier fares.
    let rows: &[(&str, i64, &str, f64, f64, f64, f64)] = &[
        ("[0,5)", 1, "credit", 6.0, 1.2, 0.21, 0.20),
        ("[0,5)", 1, "credit", 7.0, 1.4, 0.22, 0.19),
        ("[0,5)", 1, "cash", 5.5, 0.0, 0.20, 0.21),
        ("[0,5)", 1, "dispute", 30.0, 0.0, 0.90, 0.91),
        ("[0,5)", 2, "cash", 6.5, 0.0, 0.19, 0.22),
        ("[0,5)", 2, "credit", 8.0, 1.6, 0.23, 0.20),
        ("[0,5)", 2, "cash", 5.0, 0.0, 0.18, 0.18),
        ("[5,10)", 1, "credit", 14.0, 2.8, 0.50, 0.52),
        ("[5,10)", 1, "cash", 13.0, 0.0, 0.52, 0.50),
        ("[5,10)", 2, "credit", 15.5, 3.1, 0.51, 0.49),
        ("[5,10)", 3, "cash", 12.5, 0.0, 0.49, 0.51),
        ("[10,15)", 1, "credit", 24.0, 4.8, 0.70, 0.30),
        ("[10,15)", 2, "cash", 23.0, 0.0, 0.71, 0.29),
        ("[15,20)", 2, "cash", 33.0, 0.0, 0.30, 0.75),
        ("[15,20)", 3, "dispute", 95.0, 0.0, 0.92, 0.88),
        ("[15,20)", 3, "cash", 34.0, 0.0, 0.31, 0.74),
    ];
    for &(d, c, m, fare, tip, x, y) in rows {
        b.push_row(&[
            d.into(),
            c.into(),
            m.into(),
            fare.into(),
            tip.into(),
            Point::new(x, y).into(),
        ])
        .expect("static rows conform to schema");
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_storage::Predicate;

    #[test]
    fn shape_and_contents() {
        let t = example_dcm_table();
        assert_eq!(t.len(), 16);
        assert_eq!(t.schema().len(), 6);
        assert_eq!(t.cat(0).unwrap().cardinality(), 4); // D bins
        assert_eq!(t.cat(1).unwrap().cardinality(), 3); // C ∈ {1,2,3}
        assert_eq!(t.cat(2).unwrap().cardinality(), 3); // M
    }

    #[test]
    fn dispute_population_is_a_spatial_and_fare_outlier() {
        let t = example_dcm_table();
        let rows = Predicate::eq("M", "dispute").filter(&t).unwrap();
        assert_eq!(rows.len(), 2);
        let fares = t.column_by_name("fare").unwrap().as_f64_slice().unwrap();
        assert!(rows.iter().all(|&r| fares[r as usize] >= 30.0));
    }
}
