//! The background maintenance pipeline: drain pending batches, fold them
//! into a new table, refresh the cube incrementally, publish through the
//! server's epoch swap.
//!
//! One fold = one generation. The fold extends the served table via
//! [`Table::extend_rows`] (old columns are memcpy'd, dictionary codes
//! stay stable, so the incremental-refresh prefix contract holds by
//! construction), then runs [`Server::refresh`] — the dry-run classifier
//! re-scans in one cheap pass, and only cells whose loss could have
//! crossed θ (cells touched by the appended rows, plus cells pushed over
//! the boundary by the redrawn global sample) are resampled; every other
//! iceberg cell keeps its prior sample verbatim. The refresh stages run
//! on the tabula-par pool at `IngestConfig::refresh.parallelism`.
//! [`Server::install`] swaps the generation under a write lock readers
//! only briefly contend on, and bumps the answer-cache epoch exactly
//! once per generation.
//!
//! [`Table::extend_rows`]: tabula_storage::Table::extend_rows

use crate::log::IngestLog;
use crate::IngestError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tabula_core::{AccuracyLoss, RefreshConfig};
use tabula_obs::{Counter, Histogram, WindowedHistogram};
use tabula_serve::Server;
use tabula_storage::Value;

/// Counter: batches accepted into the log.
pub const INGEST_BATCHES: &str = "ingest.batches";
/// Counter: rows accepted into the log.
pub const INGEST_ROWS: &str = "ingest.rows";
/// Counter: folds (= generations published by the pipeline).
pub const INGEST_FOLDS: &str = "ingest.folds";
/// Counter: rows folded into published generations.
pub const INGEST_FOLDED_ROWS: &str = "ingest.folded_rows";
/// Counter: maintenance-thread failures (the loop halts on the first).
pub const INGEST_FOLD_ERRORS: &str = "ingest.fold_errors";
/// Histogram + 60 s window: wall time of one fold (drain → install).
pub const INGEST_FOLD_NS: &str = "ingest.fold_ns";
/// Histogram + 60 s window: per-batch freshness lag — append time to the
/// install of the generation containing the batch. The p99 of the window
/// is the dashboard's staleness knob readout.
pub const INGEST_FRESHNESS_NS: &str = "ingest.freshness_lag_ns";

/// Knobs of the ingest pipeline (env overrides via
/// [`from_env`](IngestConfig::from_env), `TABULA_INGEST_*`).
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Refresh knobs (seed, serfling, parallelism, materialization mode)
    /// applied to every fold.
    pub refresh: RefreshConfig,
    /// Most batches folded into a single generation
    /// (`TABULA_INGEST_FOLD_BATCHES`, default 64). Smaller values mean
    /// fresher answers and more refresh work per row.
    pub fold_batches: usize,
    /// Backpressure bound on unfolded rows
    /// (`TABULA_INGEST_PENDING_ROWS`, default 1 Mi rows): appends block
    /// past it, bounding staleness by construction.
    pub pending_rows: usize,
    /// Idle poll interval of the maintenance thread
    /// (`TABULA_INGEST_POLL_MS`, default 20 ms). Arrivals wake the
    /// thread immediately; this only bounds shutdown latency.
    pub poll: Duration,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            refresh: RefreshConfig::default(),
            fold_batches: 64,
            pending_rows: 1 << 20,
            poll: Duration::from_millis(20),
        }
    }
}

impl IngestConfig {
    /// Defaults overridden by the `TABULA_INGEST_*` environment knobs.
    pub fn from_env() -> Self {
        fn parse(name: &str) -> Option<u64> {
            std::env::var(name).ok()?.trim().parse().ok()
        }
        let mut c = IngestConfig::default();
        if let Some(v) = parse("TABULA_INGEST_FOLD_BATCHES") {
            c.fold_batches = (v as usize).max(1);
        }
        if let Some(v) = parse("TABULA_INGEST_PENDING_ROWS") {
            c.pending_rows = (v as usize).max(1);
        }
        if let Some(v) = parse("TABULA_INGEST_POLL_MS") {
            c.poll = Duration::from_millis(v.max(1));
        }
        c
    }
}

/// A point-in-time snapshot of the pipeline, cheap enough to poll.
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Batches accepted into the log so far.
    pub appended_batches: u64,
    /// Rows accepted into the log so far.
    pub appended_rows: u64,
    /// Unfolded backlog, batches.
    pub pending_batches: usize,
    /// Unfolded backlog, rows.
    pub pending_rows: usize,
    /// Generations published by the pipeline.
    pub folds: u64,
    /// Batches folded into published generations.
    pub folded_batches: u64,
    /// Rows folded into published generations.
    pub folded_rows: u64,
    /// Highest barrier sequence number served.
    pub last_folded_seq: u64,
    /// Median fold wall time, nanoseconds (lifetime histogram).
    pub fold_p50_ns: u64,
    /// p99 fold wall time, nanoseconds (lifetime histogram).
    pub fold_p99_ns: u64,
    /// Median freshness lag, nanoseconds (lifetime histogram).
    pub freshness_p50_ns: u64,
    /// p99 freshness lag, nanoseconds — "how stale can an already-acked
    /// row be before a reader can see it".
    pub freshness_p99_ns: u64,
}

struct Shared {
    folds: AtomicU64,
    folded_batches: AtomicU64,
    folded_rows: AtomicU64,
    batches: Arc<Counter>,
    rows: Arc<Counter>,
    folds_ctr: Arc<Counter>,
    folded_rows_ctr: Arc<Counter>,
    fold_errors: Arc<Counter>,
    fold_ns: Arc<Histogram>,
    fold_window: Arc<WindowedHistogram>,
    freshness_ns: Arc<Histogram>,
    freshness_window: Arc<WindowedHistogram>,
    /// First fold failure, rendered; the loop halts on it.
    error: Mutex<Option<String>>,
}

/// Handle to a running ingest pipeline: an [`IngestLog`] plus the
/// background maintenance thread folding it into the [`Server`].
///
/// Dropping the handle closes the log and joins the thread (remaining
/// pending batches are folded first).
pub struct Ingestor {
    log: Arc<IngestLog>,
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl Ingestor {
    /// Start a maintenance thread folding appended batches into
    /// `server`'s cube under `loss`. Metrics are homed in the server's
    /// registry so one scrape covers serving and ingestion.
    pub fn start<L: AccuracyLoss>(server: Arc<Server>, loss: L, config: IngestConfig) -> Ingestor {
        let registry = server.registry();
        let schema = server.cube().table().schema().clone();
        let log = Arc::new(IngestLog::new(schema, config.pending_rows));
        let shared = Arc::new(Shared {
            folds: AtomicU64::new(0),
            folded_batches: AtomicU64::new(0),
            folded_rows: AtomicU64::new(0),
            batches: registry.counter(INGEST_BATCHES),
            rows: registry.counter(INGEST_ROWS),
            folds_ctr: registry.counter(INGEST_FOLDS),
            folded_rows_ctr: registry.counter(INGEST_FOLDED_ROWS),
            fold_errors: registry.counter(INGEST_FOLD_ERRORS),
            fold_ns: registry.histogram(INGEST_FOLD_NS),
            fold_window: registry.window(INGEST_FOLD_NS),
            freshness_ns: registry.histogram(INGEST_FRESHNESS_NS),
            freshness_window: registry.window(INGEST_FRESHNESS_NS),
            error: Mutex::new(None),
        });
        let handle = {
            let (log, shared) = (Arc::clone(&log), Arc::clone(&shared));
            std::thread::Builder::new()
                .name("tabula-ingest".into())
                .spawn(move || maintenance_loop(server, loss, config, log, shared))
                .expect("spawn ingest maintenance thread")
        };
        Ingestor { log, shared, handle: Some(handle) }
    }

    /// Append one batch; returns its barrier sequence number. See
    /// [`IngestLog::append`] for validation and backpressure semantics.
    pub fn append(&self, rows: Vec<Vec<Value>>) -> Result<u64, IngestError> {
        let n = rows.len() as u64;
        let seq = self.log.append(rows)?;
        self.shared.batches.inc();
        self.shared.rows.add(n);
        Ok(seq)
    }

    /// The underlying log (barrier waits, backlog introspection).
    pub fn log(&self) -> &Arc<IngestLog> {
        &self.log
    }

    /// Block until batch `seq` is part of the served generation.
    pub fn wait_folded(&self, seq: u64) -> Result<(), IngestError> {
        if self.log.wait_folded(seq) {
            Ok(())
        } else {
            Err(self.halt_error())
        }
    }

    /// Block until everything appended so far is served; returns the
    /// barrier reached.
    pub fn flush(&self) -> Result<u64, IngestError> {
        let seq = self.log.last_appended_seq();
        if seq > 0 {
            self.wait_folded(seq)?;
        }
        Ok(seq)
    }

    /// Point-in-time pipeline statistics.
    pub fn stats(&self) -> IngestStats {
        let (appended_batches, appended_rows) = self.log.appended();
        let (pending_batches, pending_rows) = self.log.pending();
        let fold = self.shared.fold_ns.snapshot();
        let fresh = self.shared.freshness_ns.snapshot();
        IngestStats {
            appended_batches,
            appended_rows,
            pending_batches,
            pending_rows,
            folds: self.shared.folds.load(Ordering::Relaxed),
            folded_batches: self.shared.folded_batches.load(Ordering::Relaxed),
            folded_rows: self.shared.folded_rows.load(Ordering::Relaxed),
            last_folded_seq: self.log.folded_seq(),
            fold_p50_ns: fold.p50(),
            fold_p99_ns: fold.p99(),
            freshness_p50_ns: fresh.p50(),
            freshness_p99_ns: fresh.p99(),
        }
    }

    /// Close the log, fold what is pending, join the thread. Returns the
    /// final stats, or the fold error that halted the loop early.
    pub fn shutdown(mut self) -> Result<IngestStats, IngestError> {
        self.close_and_join();
        if let Some(msg) = self.shared.error.lock().unwrap().clone() {
            return Err(IngestError::Fold(msg));
        }
        Ok(self.stats())
    }

    fn halt_error(&self) -> IngestError {
        match self.shared.error.lock().unwrap().clone() {
            Some(msg) => IngestError::Fold(msg),
            None => IngestError::Closed,
        }
    }

    fn close_and_join(&mut self) {
        self.log.close();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Ingestor {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn maintenance_loop<L: AccuracyLoss>(
    server: Arc<Server>,
    loss: L,
    config: IngestConfig,
    log: Arc<IngestLog>,
    shared: Arc<Shared>,
) {
    loop {
        let mut batches = log.wait_drain(config.fold_batches, config.poll);
        if batches.is_empty() {
            if log.is_closed() {
                break;
            }
            continue;
        }
        let started = Instant::now();
        let barrier = batches.last().map(|b| b.seq).unwrap_or(0);
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for b in &mut batches {
            rows.append(&mut b.rows);
        }
        // Extend (memcpy + append; prefix contract holds by construction),
        // refresh incrementally, publish. `Server::refresh` installs the
        // new generation and bumps the cache epoch exactly once.
        let result = server
            .cube()
            .table()
            .extend_rows(&rows)
            .map_err(tabula_core::CoreError::from)
            .and_then(|t| server.refresh(Arc::new(t), &loss, config.refresh));
        match result {
            Ok(_refresh_stats) => {
                let fold_ns = started.elapsed().as_nanos() as u64;
                shared.fold_ns.record(fold_ns);
                shared.fold_window.record(fold_ns);
                for b in &batches {
                    let lag = b.appended_at.elapsed().as_nanos() as u64;
                    shared.freshness_ns.record(lag);
                    shared.freshness_window.record(lag);
                }
                shared.folds.fetch_add(1, Ordering::Relaxed);
                shared.folded_batches.fetch_add(batches.len() as u64, Ordering::Relaxed);
                shared.folded_rows.fetch_add(rows.len() as u64, Ordering::Relaxed);
                shared.folds_ctr.inc();
                shared.folded_rows_ctr.add(rows.len() as u64);
                log.mark_folded(barrier);
            }
            Err(e) => {
                shared.fold_errors.inc();
                *shared.error.lock().unwrap() = Some(e.to_string());
                break;
            }
        }
    }
    log.mark_halted();
}
