//! The paper's histogram-aware loss: Function 2 evaluated on 1-D data —
//! the average distance from each raw value of the target attribute to the
//! nearest sample value. With fares as the target, the loss unit is US
//! dollars (as in the paper's Section V experiments).

use super::index::Sorted1D;
use super::AccuracyLoss;
use crate::sampling::{coverage_greedy, CoverageSpace};
use tabula_storage::agg::SumCount;
use tabula_storage::{RowId, Table};

/// 1-D visualization-aware (histogram) accuracy loss over one numeric
/// target attribute.
#[derive(Debug, Clone)]
pub struct HistogramLoss {
    attr: usize,
}

impl HistogramLoss {
    /// Loss over the numeric column at index `attr`.
    pub fn new(attr: usize) -> Self {
        HistogramLoss { attr }
    }

    #[inline]
    fn value(&self, table: &Table, row: RowId) -> f64 {
        table
            .column(self.attr)
            .as_f64_slice()
            .map(|s| s[row as usize])
            .or_else(|| table.column(self.attr).as_i64_slice().map(|s| s[row as usize] as f64))
            .expect("HistogramLoss target attribute must be numeric")
    }
}

/// Sample context: the sample's sorted values.
pub struct HistogramCtx {
    index: Sorted1D,
}

impl AccuracyLoss for HistogramLoss {
    /// Sum and count of per-row min distances to the fixed sample.
    type State = SumCount;
    type SampleCtx = HistogramCtx;

    fn name(&self) -> &'static str {
        "histogram_avg_min_dist"
    }

    fn state_depends_on_sample(&self) -> bool {
        true
    }

    fn prepare(&self, table: &Table, sample: &[RowId]) -> HistogramCtx {
        let values: Vec<f64> = sample.iter().map(|&r| self.value(table, r)).collect();
        HistogramCtx { index: Sorted1D::build(values) }
    }

    fn fold(&self, ctx: &HistogramCtx, state: &mut SumCount, table: &Table, row: RowId) {
        state.add(ctx.index.nearest_dist(self.value(table, row)));
    }

    fn finish(&self, _ctx: &HistogramCtx, state: &SumCount) -> f64 {
        state.mean().unwrap_or(0.0)
    }

    fn loss_within(
        &self,
        table: &Table,
        raw: &[RowId],
        ctx: &HistogramCtx,
        bound: f64,
    ) -> Option<f64> {
        if raw.is_empty() {
            return Some(0.0);
        }
        let budget = bound * raw.len() as f64;
        let mut sum = 0.0;
        for &r in raw {
            sum += ctx.index.nearest_dist(self.value(table, r));
            if sum > budget {
                return None;
            }
        }
        Some(sum / raw.len() as f64)
    }

    fn signature(&self, table: &Table, rows: &[RowId]) -> [f64; 2] {
        if rows.is_empty() {
            return [0.0, 0.0];
        }
        let sum: f64 = rows.iter().map(|&r| self.value(table, r)).sum();
        [sum / rows.len() as f64, 0.0]
    }

    fn sample_greedy(&self, table: &Table, raw: &[RowId], theta: f64) -> Vec<RowId> {
        let values: Vec<f64> = raw.iter().map(|&r| self.value(table, r)).collect();
        let picked = coverage_greedy(&ValueSpace { values }, theta);
        picked.into_iter().map(|i| raw[i]).collect()
    }
}

/// Coverage space over scalars for the lazy-forward greedy engine.
struct ValueSpace {
    values: Vec<f64>,
}

impl CoverageSpace for ValueSpace {
    fn len(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn dist(&self, a: usize, b: usize) -> f64 {
        (self.values[a] - self.values[b]).abs()
    }

    fn center_element(&self) -> usize {
        let mean = self.values.iter().sum::<f64>() / self.values.len() as f64;
        let mut best = (f64::INFINITY, 0);
        for (i, v) in self.values.iter().enumerate() {
            let d = (v - mean).abs();
            if d < best.0 {
                best = (d, i);
            }
        }
        best.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_storage::{ColumnType, Field, Schema, TableBuilder};

    fn table(values: &[f64]) -> Table {
        let schema = Schema::new(vec![Field::new("fare", ColumnType::Float64)]);
        let mut b = TableBuilder::new(schema);
        for &v in values {
            b.push_row(&[v.into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn exact_loss_small_case() {
        let t = table(&[1.0, 2.0, 3.0, 10.0]);
        let loss = HistogramLoss::new(0);
        let all: Vec<RowId> = t.all_rows();
        // Sample {2.0}: distances 1 + 0 + 1 + 8 = 10; avg 2.5.
        assert!((loss.loss(&t, &all, &[1]) - 2.5).abs() < 1e-12);
        // Sample {2.0, 10.0}: distances 1 + 0 + 1 + 0 = 2; avg 0.5.
        assert!((loss.loss(&t, &all, &[1, 3]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn greedy_hits_dollar_thresholds() {
        // Bimodal fares: city trips around $10, JFK flat fares at $52.
        let mut values: Vec<f64> = (0..200).map(|i| 8.0 + (i % 40) as f64 * 0.1).collect();
        values.extend((0..20).map(|i| 52.0 + (i % 5) as f64 * 0.2));
        let t = table(&values);
        let loss = HistogramLoss::new(0);
        let all: Vec<RowId> = t.all_rows();
        for theta in [2.0, 0.5, 0.1] {
            let sample = loss.sample_greedy(&t, &all, theta);
            let achieved = loss.loss(&t, &all, &sample);
            assert!(achieved <= theta + 1e-12, "θ={theta}: {achieved}");
        }
        // A $0.5 threshold must force a sample value near the $52 mode.
        let sample = loss.sample_greedy(&t, &all, 0.5);
        let vals = t.column(0).as_f64_slice().unwrap();
        assert!(sample.iter().any(|&r| vals[r as usize] > 50.0));
    }
}
