//! # tabula-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation (Section V). One binary per experiment — see
//! `src/bin/` and the per-experiment index in `DESIGN.md` — plus criterion
//! micro-benchmarks under `benches/`.
//!
//! ## Scale
//!
//! The paper runs 700 M rows on a 5-node / 60-core Spark cluster; this
//! harness runs a synthetic table with the same relational shape on one
//! machine. Default scale is [`default_rows`] rows, overridable with the
//! `TABULA_BENCH_ROWS` environment variable. Absolute numbers therefore
//! differ from the paper's; EXPERIMENTS.md compares the *shapes* (who
//! wins, by what factor, where the crossovers sit).

use std::sync::Arc;
use std::time::{Duration, Instant};
use tabula_core::cube::SamplingCube;
use tabula_core::loss::AccuracyLoss;
use tabula_data::{QueryCell, TaxiConfig, TaxiGenerator, Workload};
use tabula_obs as obs;
use tabula_storage::{RowId, Table};

/// Default table size for harness runs.
pub const DEFAULT_ROWS: usize = 20_000;
/// Default workload size (the paper uses 100 queries).
pub const DEFAULT_QUERIES: usize = 100;
/// Seed shared by all experiments (generator, workloads, samples).
pub const SEED: u64 = 42;

/// Rows to generate: `TABULA_BENCH_ROWS` env var or [`DEFAULT_ROWS`].
pub fn default_rows() -> usize {
    std::env::var("TABULA_BENCH_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_ROWS)
}

/// Queries per workload: `TABULA_BENCH_QUERIES` env var or 100.
pub fn default_queries() -> usize {
    std::env::var("TABULA_BENCH_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_QUERIES)
}

/// Generate the standard harness table.
pub fn taxi_table(rows: usize) -> Arc<Table> {
    Arc::new(TaxiGenerator::new(TaxiConfig { rows, seed: SEED }).generate())
}

/// Generate the standard `n`-query workload over `attrs`.
pub fn workload(table: &Table, attrs: &[&str], n: usize) -> Vec<QueryCell> {
    Workload::new(attrs).generate(table, n, SEED ^ 0xBEEF).expect("workload generation succeeds")
}

/// Mean duration of a slice of durations.
pub fn mean_duration(durations: &[Duration]) -> Duration {
    if durations.is_empty() {
        return Duration::ZERO;
    }
    durations.iter().sum::<Duration>() / durations.len() as u32
}

/// Measured behaviour of one approach over a workload.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Approach label.
    pub name: String,
    /// Mean data-system time per query.
    pub mean_data_system: Duration,
    /// Actual accuracy loss per query (min / mean / max summarized by the
    /// harness output).
    pub losses: Vec<f64>,
    /// Mean number of tuples returned per query.
    pub mean_answer_size: f64,
}

impl WorkloadResult {
    /// min / mean / max of the measured losses (∞-free; infinite losses
    /// are excluded and counted separately by callers if needed).
    pub fn loss_summary(&self) -> (f64, f64, f64) {
        let finite: Vec<f64> = self.losses.iter().copied().filter(|l| l.is_finite()).collect();
        if finite.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let min = finite.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = finite.iter().sum::<f64>() / finite.len() as f64;
        (min, mean, max)
    }
}

/// Run a tuple-returning approach over a workload, measuring per-query
/// data-system time and actual loss under `loss`.
pub fn run_workload<L: AccuracyLoss>(
    name: &str,
    table: &Table,
    queries: &[QueryCell],
    loss: &L,
    mut answer: impl FnMut(&QueryCell) -> (Vec<RowId>, Duration),
) -> WorkloadResult {
    let mut times = Vec::with_capacity(queries.len());
    let mut losses = Vec::with_capacity(queries.len());
    let mut sizes = 0usize;
    for q in queries {
        let (rows, t) = answer(q);
        times.push(t);
        let raw = q.predicate.filter(table).expect("valid predicate");
        losses.push(loss.loss(table, &raw, &rows));
        sizes += rows.len();
    }
    WorkloadResult {
        name: name.to_owned(),
        mean_data_system: mean_duration(&times),
        losses,
        mean_answer_size: sizes as f64 / queries.len().max(1) as f64,
    }
}

/// Query a built sampling cube over a workload (the Tabula / Tabula\*
/// answer path), timing only the middleware lookup.
pub fn run_cube_workload<L: AccuracyLoss>(
    name: &str,
    cube: &SamplingCube,
    table: &Table,
    queries: &[QueryCell],
    loss: &L,
) -> WorkloadResult {
    let latency = obs::global().histogram("query.latency");
    run_workload(name, table, queries, loss, |q| {
        let start = Instant::now();
        let ans = cube.query_cell(&q.cell);
        let t = start.elapsed();
        latency.record_duration(t);
        (ans.rows.as_ref().clone(), t)
    })
}

/// Run the paper's standard approach comparison (Figures 11–14) at one
/// threshold: SamFirst (two pre-built sizes, 0.1 % and 1 % of the table —
/// the paper's 100 MB / 1 GB on its 100 GB table), SampleOnTheFly,
/// POIsam, Tabula and Tabula\*.
pub fn standard_comparison<L: AccuracyLoss + Clone>(
    table: &Arc<Table>,
    attrs: &[&str],
    loss: L,
    theta: f64,
    queries: &[QueryCell],
) -> Vec<WorkloadResult> {
    use tabula_baselines::{Approach, PoiSam, SampleFirst, SampleOnTheFly};
    use tabula_core::{MaterializationMode, SamplingCubeBuilder};

    let mut out = Vec::new();

    let small = (table.len() / 1000).max(100);
    let large = (table.len() / 100).max(1000);
    let sf_small = SampleFirst::with_rows(Arc::clone(table), small, SEED).named("SamFirst-0.1%");
    let sf_large = SampleFirst::with_rows(Arc::clone(table), large, SEED).named("SamFirst-1%");
    for sf in [&sf_small, &sf_large] {
        out.push(run_workload(sf.name(), table, queries, &loss, |q| {
            let a = sf.query(&q.predicate);
            (a.rows, a.data_system_time)
        }));
    }

    let fly = SampleOnTheFly::new(Arc::clone(table), loss.clone(), theta);
    out.push(run_workload(fly.name(), table, queries, &loss, |q| {
        let a = fly.query(&q.predicate);
        (a.rows, a.data_system_time)
    }));

    let poisam = PoiSam::new(Arc::clone(table), loss.clone(), theta, SEED);
    out.push(run_workload(poisam.name(), table, queries, &loss, |q| {
        let a = poisam.query(&q.predicate);
        (a.rows, a.data_system_time)
    }));

    for (name, mode) in
        [("Tabula", MaterializationMode::Tabula), ("Tabula*", MaterializationMode::TabulaStar)]
    {
        let cube = SamplingCubeBuilder::new(Arc::clone(table), attrs, loss.clone(), theta)
            .mode(mode)
            .seed(SEED)
            .build()
            .expect("build succeeds");
        out.push(run_cube_workload(name, &cube, table, queries, &loss));
    }
    out
}

/// Print a comparison block: data-system time + actual loss per approach.
pub fn print_comparison(theta_label: &str, theta: f64, results: &[WorkloadResult]) {
    println!("\n-- θ = {theta_label} --");
    println!(
        "{:<16} {:>14} {:>12} {:>12} {:>12} {:>10}",
        "approach", "data-system", "loss min", "loss avg", "loss max", "answer sz"
    );
    for r in results {
        let (min, mean, max) = r.loss_summary();
        let flag = if max > theta * 1.0001 { " (> θ)" } else { "" };
        println!(
            "{:<16} {:>14} {:>12.5} {:>12.5} {:>11.5}{flag} {:>9.0}",
            r.name,
            fmt_duration(r.mean_data_system),
            min,
            mean,
            max,
            r.mean_answer_size
        );
    }
}

/// Pretty-print one figure-style series row.
pub fn print_series_header(title: &str, columns: &[&str]) {
    println!("\n=== {title} ===");
    print!("{:<22}", "approach");
    for c in columns {
        print!("{c:>16}");
    }
    println!();
    println!("{}", "-".repeat(22 + 16 * columns.len()));
}

/// Format a duration in engineering units.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 10 {
        format!("{:.1}s", d.as_secs_f64())
    } else if d.as_millis() >= 10 {
        format!("{}ms", d.as_millis())
    } else if d.as_micros() >= 1 {
        format!("{:.0}µs", d.as_micros())
    } else {
        format!("{}ns", d.as_nanos())
    }
}

/// Write a machine-readable run summary for one benchmark binary.
///
/// The file is named `BENCH_<name>.json` and lands in `TABULA_BENCH_OUT`
/// (created if needed) or the current directory. It embeds the full
/// [`obs::MetricsSnapshot`] (counters, gauges, latency quantiles) plus
/// any experiment-specific `extra` key/value pairs, so dashboards and CI
/// can diff runs without scraping the human-readable stdout tables.
pub fn write_run_summary(
    name: &str,
    snapshot: &obs::MetricsSnapshot,
    extra: &[(&str, serde::Value)],
) -> std::io::Result<std::path::PathBuf> {
    use serde::Value;
    let bad = |e: serde_json::Error| std::io::Error::new(std::io::ErrorKind::InvalidData, e.0);
    let mut root = std::collections::BTreeMap::new();
    root.insert("bench".to_owned(), Value::Str(name.to_owned()));
    root.insert("rows".to_owned(), Value::Int(default_rows() as i128));
    root.insert("threads".to_owned(), Value::Int(tabula_par::threads() as i128));
    for (k, v) in extra {
        root.insert((*k).to_owned(), v.clone());
    }
    root.insert("metrics".to_owned(), serde_json::parse_value(&snapshot.to_json()).map_err(bad)?);
    let dir = std::env::var("TABULA_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut body = serde_json::to_string_pretty(&Value::Obj(root)).map_err(bad)?;
    body.push('\n');
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Format bytes in engineering units.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 10 * 1024 * 1024 {
        format!("{:.1}MB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 10 * 1024 {
        format!("{:.1}KB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_core::loss::MeanLoss;
    use tabula_core::SamplingCubeBuilder;
    use tabula_data::CUBED_ATTRIBUTES;

    #[test]
    fn workload_runner_measures_losses() {
        let t = taxi_table(2_000);
        let fare = t.schema().index_of("fare_amount").unwrap();
        let loss = MeanLoss::new(fare);
        let attrs: Vec<&str> = CUBED_ATTRIBUTES[..3].to_vec();
        let queries = workload(&t, &attrs, 10);
        // "Approach" that returns the full raw answer: loss must be 0.
        let result = run_workload("exact", &t, &queries, &loss, |q| {
            let start = Instant::now();
            let rows = q.predicate.filter(&t).unwrap();
            (rows, start.elapsed())
        });
        let (min, mean, max) = result.loss_summary();
        assert_eq!(min, 0.0);
        assert_eq!(mean, 0.0);
        assert_eq!(max, 0.0);
        assert!(result.mean_answer_size > 0.0);
    }

    #[test]
    fn cube_workload_meets_theta() {
        let t = taxi_table(3_000);
        let fare = t.schema().index_of("fare_amount").unwrap();
        let loss = MeanLoss::new(fare);
        let theta = 0.05;
        let cube =
            SamplingCubeBuilder::new(Arc::clone(&t), &CUBED_ATTRIBUTES[..3], loss.clone(), theta)
                .seed(SEED)
                .build()
                .unwrap();
        let attrs: Vec<&str> = CUBED_ATTRIBUTES[..3].to_vec();
        let queries = workload(&t, &attrs, 20);
        let result = run_cube_workload("tabula", &cube, &t, &queries, &loss);
        let (_, _, max) = result.loss_summary();
        assert!(max <= theta + 1e-9);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bytes(100), "100B");
        assert!(fmt_bytes(200 * 1024).ends_with("KB"));
        assert!(fmt_bytes(50 * 1024 * 1024).ends_with("MB"));
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50ms");
        assert_eq!(fmt_duration(Duration::from_secs(20)), "20.0s");
        assert_eq!(
            mean_duration(&[Duration::from_millis(10), Duration::from_millis(30)]),
            Duration::from_millis(20)
        );
    }
}
