//! End-to-end SQL-surface tests on realistic data: the paper's Section II
//! statement flow against the synthetic taxi table.

use std::sync::Arc;
use tabula::data::{TaxiConfig, TaxiGenerator};
use tabula::sql::{QueryResult, Session, SqlError};
use tabula::storage::Predicate;

fn session(rows: usize) -> Session {
    let mut s = Session::new().with_seed(4);
    s.register_table(
        "nyctaxi",
        Arc::new(TaxiGenerator::new(TaxiConfig { rows, seed: 4 }).generate()),
    );
    s
}

#[test]
fn full_paper_flow_with_builtin_loss() {
    let mut s = session(20_000);
    let created = s
        .execute(
            "CREATE TABLE cube AS \
             SELECT payment_type, passenger_count, rate_code, SAMPLING(*, 0.05) AS sample \
             FROM nyctaxi GROUPBY CUBE(payment_type, passenger_count, rate_code) \
             HAVING mean_loss(fare_amount, Sam_global) > 0.05",
        )
        .unwrap();
    let QueryResult::CubeCreated { stats, .. } = created else { panic!() };
    assert!(stats.iceberg_cells > 0);
    assert!(stats.samples_after_selection <= stats.samples_before_selection);

    // Every queried population's sample mean is within 5 %.
    let table = Arc::clone(s.table("nyctaxi").unwrap());
    let fares = table.column_by_name("fare_amount").unwrap().as_f64_slice().unwrap();
    let mean = |rows: &[u32]| -> f64 {
        rows.iter().map(|&r| fares[r as usize]).sum::<f64>() / rows.len() as f64
    };
    for (pred_sql, pred) in [
        ("payment_type = 'cash'", Predicate::eq("payment_type", "cash")),
        ("rate_code = 'jfk'", Predicate::eq("rate_code", "jfk")),
        ("passenger_count = 2", Predicate::eq("passenger_count", 2i64)),
    ] {
        let QueryResult::Sample { table: sample, .. } =
            s.execute(&format!("SELECT sample FROM cube WHERE {pred_sql}")).unwrap()
        else {
            panic!()
        };
        let raw_rows = pred.filter(&table).unwrap();
        let sample_fares = sample.column_by_name("fare_amount").unwrap().as_f64_slice().unwrap();
        let sample_mean = sample_fares.iter().sum::<f64>() / sample_fares.len() as f64;
        let rel = ((mean(&raw_rows) - sample_mean) / mean(&raw_rows)).abs();
        assert!(rel <= 0.05 + 1e-9, "{pred_sql}: rel error {rel}");
    }
}

#[test]
fn user_defined_aggregate_flow() {
    let mut s = session(8_000);
    s.execute(
        "CREATE AGGREGATE stddev_loss(Raw, Sam) RETURN decimal_value AS \
         BEGIN ABS(STDDEV(Raw) - STDDEV(Sam)) / STDDEV(Raw) END",
    )
    .unwrap();
    let result = s
        .execute(
            "CREATE TABLE sd AS SELECT payment_type, SAMPLING(*, 0.2) AS sample \
             FROM nyctaxi GROUPBY CUBE(payment_type) \
             HAVING stddev_loss(fare_amount, Sam_global) > 0.2",
        )
        .unwrap();
    assert!(matches!(result, QueryResult::CubeCreated { .. }));
    let answer = s.execute("SELECT sample FROM sd WHERE payment_type = 'credit'").unwrap();
    assert!(!answer.is_empty());
}

#[test]
fn empty_domain_queries_return_no_rows() {
    let mut s = session(5_000);
    s.execute(
        "CREATE TABLE c AS SELECT payment_type, SAMPLING(*, 0.1) AS sample \
         FROM nyctaxi GROUPBY CUBE(payment_type) \
         HAVING mean_loss(fare_amount, Sam_global) > 0.1",
    )
    .unwrap();
    let QueryResult::Sample { table, provenance } =
        s.execute("SELECT sample FROM c WHERE payment_type = 'wire_transfer'").unwrap()
    else {
        panic!()
    };
    assert_eq!(table.len(), 0);
    assert!(matches!(provenance, tabula::core::SampleProvenance::EmptyDomain));
}

#[test]
fn errors_surface_cleanly() {
    let mut s = session(2_000);
    // WHERE column outside the cubed attributes.
    s.execute(
        "CREATE TABLE c AS SELECT payment_type, SAMPLING(*, 0.1) AS sample \
         FROM nyctaxi GROUPBY CUBE(payment_type) \
         HAVING mean_loss(fare_amount, Sam_global) > 0.1",
    )
    .unwrap();
    let err = s.execute("SELECT sample FROM c WHERE vendor_name = 'CMT'");
    assert!(matches!(err, Err(SqlError::Core(_))), "{err:?}");
    // Loss over a non-numeric target.
    let err = s.execute(
        "CREATE TABLE c2 AS SELECT payment_type, SAMPLING(*, 0.1) AS sample \
         FROM nyctaxi GROUPBY CUBE(payment_type) \
         HAVING mean_loss(no_such_column, Sam_global) > 0.1",
    );
    assert!(matches!(err, Err(SqlError::Storage(_))), "{err:?}");
}
