//! Criterion micro-benchmark: the sample-selection stage — SamGraph
//! construction (representation join) and Algorithm 3 (greedy dominating
//! set) — the components behind the paper's ~50× sample-table reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tabula_bench::{taxi_table, SEED};
use tabula_core::dryrun::dry_run;
use tabula_core::loss::MeanLoss;
use tabula_core::realrun::real_run;
use tabula_core::samgraph::{build_samgraph, SamGraph, SamGraphConfig};
use tabula_core::selection::select_representatives;
use tabula_core::serfling::draw_global_sample;
use tabula_core::AccuracyLoss;
use tabula_data::CUBED_ATTRIBUTES;

fn bench_selection(c: &mut Criterion) {
    let table = taxi_table(20_000);
    let fare = table.schema().index_of("fare_amount").unwrap();
    let loss = MeanLoss::new(fare);
    let theta = 0.05;
    let cols: Vec<usize> =
        CUBED_ATTRIBUTES[..5].iter().map(|a| table.schema().index_of(a).unwrap()).collect();
    let global = draw_global_sample(&table, 1060, SEED);
    let ctx = loss.prepare(&table, &global);
    let dry = dry_run(&table, &cols, &loss, &ctx, theta).unwrap();
    let rr = real_run(&table, &cols, &loss, theta, &dry, 0).unwrap();
    let m = rr.entries.len();

    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("samgraph_join_mean", m), |b| {
        b.iter(|| {
            black_box(build_samgraph(&table, &loss, theta, &rr.entries, &SamGraphConfig::default()))
        })
    });

    let graph: SamGraph =
        build_samgraph(&table, &loss, theta, &rr.entries, &SamGraphConfig::default());
    group.bench_function(BenchmarkId::new("algorithm3_greedy_dominating_set", graph.len()), |b| {
        b.iter(|| black_box(select_representatives(&graph)))
    });
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
