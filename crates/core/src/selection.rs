//! Representative-sample selection — the paper's **Algorithm 3**.
//!
//! The RepSamSel problem (Definition 7): pick a minimum subset `D` of the
//! SamGraph's vertices such that every vertex is represented by some
//! member of `D`. The problem is NP-hard (reduction from Minimum
//! Dominating Set, paper Lemma IV.1), so the paper uses a greedy strategy:
//! sort samples by out-degree once, then repeatedly persist the first
//! not-yet-covered sample and drop everything it represents. Only the
//! selected representatives are persisted in the sample table; every other
//! local sample is discarded and its cube-table cell points at its
//! representative's sample id.

use crate::samgraph::SamGraph;
use tabula_obs::span;

/// Output of Algorithm 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Indices (into the cube-entry list) of the persisted representative
    /// samples, in selection order.
    pub representatives: Vec<u32>,
    /// For every cube entry, the index of the representative whose sample
    /// answers its queries. `rep_of[r] == r` for representatives.
    pub rep_of: Vec<u32>,
}

impl Selection {
    /// How many samples selection avoided persisting.
    pub fn samples_saved(&self) -> usize {
        self.rep_of.len() - self.representatives.len()
    }
}

/// Run Algorithm 3 on `graph`.
///
/// Faithful to the paper: heads are sorted by out-degree *once* (the
/// LinkedHashMap), then scanned in order; each head that is still present
/// is selected and all its tails are removed. Ties are broken by vertex
/// index, making the output deterministic. Because every vertex carries a
/// self-edge, coverage is total.
pub fn select_representatives(graph: &SamGraph) -> Selection {
    let m = graph.len();
    let _span = span!("selection.greedy", "vertices={m} edges={}", graph.edge_count());
    // Sort heads by descending out-degree, ascending index on ties.
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_by_key(|&h| (std::cmp::Reverse(graph.edges[h as usize].len()), h));

    let mut removed = vec![false; m];
    let mut rep_of = vec![u32::MAX; m];
    let mut representatives = Vec::new();
    for &head in &order {
        if removed[head as usize] {
            continue;
        }
        representatives.push(head);
        removed[head as usize] = true;
        rep_of[head as usize] = head;
        for &tail in &graph.edges[head as usize] {
            if !removed[tail as usize] {
                removed[tail as usize] = true;
                rep_of[tail as usize] = head;
            }
        }
    }
    debug_assert!(rep_of.iter().all(|&r| r != u32::MAX), "total coverage");
    Selection { representatives, rep_of }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a graph from explicit adjacency (self-edges added).
    fn graph(adj: &[&[u32]]) -> SamGraph {
        let edges = adj
            .iter()
            .enumerate()
            .map(|(u, outs)| {
                let mut e = vec![u as u32];
                e.extend(outs.iter().copied().filter(|&v| v != u as u32));
                e
            })
            .collect();
        SamGraph { edges }
    }

    #[test]
    fn reproduces_the_papers_figure_7_walkthrough() {
        // Paper Figure 7, 1-indexed samples 1..8 mapped to 0..7 here:
        // Sample2 represents {1,2,3,6,7}; Sample8 represents {3,7,8};
        // Sample5 represents {5,6}; Sample4 represents itself; the rest
        // only represent themselves. Expected pick order: 2, 8, 5, 4.
        let g = graph(&[
            &[],           // 1
            &[0, 2, 5, 6], // 2 → 1,3,6,7
            &[],           // 3
            &[],           // 4
            &[5],          // 5 → 6
            &[],           // 6
            &[],           // 7
            &[2, 6],       // 8 → 3,7
        ]);
        let sel = select_representatives(&g);
        assert_eq!(sel.representatives, vec![1, 7, 4, 3]); // samples 2, 8, 5, 4
                                                           // Every vertex covered by a representative that has an edge to it.
        for (v, &r) in sel.rep_of.iter().enumerate() {
            assert!(
                g.edges[r as usize].contains(&(v as u32)),
                "vertex {v} not actually represented by {r}"
            );
        }
        assert_eq!(sel.samples_saved(), 4);
    }

    #[test]
    fn disconnected_graph_keeps_every_sample() {
        let g = graph(&[&[], &[], &[]]);
        let sel = select_representatives(&g);
        assert_eq!(sel.representatives, vec![0, 1, 2]);
        assert_eq!(sel.rep_of, vec![0, 1, 2]);
        assert_eq!(sel.samples_saved(), 0);
    }

    #[test]
    fn complete_graph_keeps_one() {
        let g = graph(&[&[1, 2, 3], &[0, 2, 3], &[0, 1, 3], &[0, 1, 2]]);
        let sel = select_representatives(&g);
        assert_eq!(sel.representatives.len(), 1);
        let r = sel.representatives[0];
        assert!(sel.rep_of.iter().all(|&x| x == r));
        assert_eq!(sel.samples_saved(), 3);
    }

    #[test]
    fn ties_break_deterministically_by_index() {
        // Two vertices each covering one other vertex: equal out-degree.
        let g = graph(&[&[2], &[3], &[], &[]]);
        let sel = select_representatives(&g);
        assert_eq!(sel.representatives, vec![0, 1]);
        assert_eq!(sel.rep_of, vec![0, 1, 0, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = SamGraph { edges: vec![] };
        let sel = select_representatives(&g);
        assert!(sel.representatives.is_empty());
        assert!(sel.rep_of.is_empty());
    }

    #[test]
    fn coverage_is_always_total_and_valid() {
        // A chain: 0 → 1 → 2 → 3 (each also self-covering).
        let g = graph(&[&[1], &[2], &[3], &[]]);
        let sel = select_representatives(&g);
        for (v, &r) in sel.rep_of.iter().enumerate() {
            assert!(g.edges[r as usize].contains(&(v as u32)), "vertex {v}");
        }
        // Representatives are exactly the fixed points of rep_of.
        for &r in &sel.representatives {
            assert_eq!(sel.rep_of[r as usize], r);
        }
    }
}
