//! Differential testing of the SQL front-end, driven by `tabula-check`'s
//! seeded generator:
//!
//! * **Printer round-trip** — every generated parser-producible AST must
//!   survive `parse(pretty_print(ast)) == ast`, and printing must be a
//!   fixed point (printing the reparsed AST yields the same text).
//! * **Executor vs oracle** — `SELECT * FROM t WHERE ...` through the
//!   lexer/parser/executor must return exactly the rows the naive
//!   tree-walking evaluator selects, across 200 seeded statements over
//!   generated tables.

use tabula::sql::parse;
use tabula_check::{diff_sql_case, gen_case, gen_statements};

/// 200 seeded statements of every kind: parse(print(ast)) ≡ ast, and the
/// printed text is a fixed point of the round-trip.
#[test]
fn printed_statements_reparse_to_the_same_ast() {
    for stmt in gen_statements(0x5a1_50c1, 200) {
        let printed = stmt.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed SQL fails to parse: {printed}\n{e}"));
        assert_eq!(reparsed, stmt, "round-trip changed the AST for: {printed}");
        assert_eq!(reparsed.to_string(), printed, "printing is not a fixed point: {printed}");
    }
}

/// 200 seeded `SELECT * ... WHERE` statements (8 generated tables × 25
/// statements each) through the real executor and the naive oracle.
#[test]
fn executor_matches_naive_evaluation_on_generated_statements() {
    let mut checked = 0;
    for seed in 100..108 {
        let case = gen_case(seed);
        checked += diff_sql_case(&case, seed, 25).unwrap_or_else(|d| panic!("seed {seed}: {d}"));
    }
    assert_eq!(checked, 200);
}
