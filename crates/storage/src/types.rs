//! Scalar value types shared across the engine.

use serde::{Deserialize, Serialize};

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integers. Categorical when used as a cubed attribute.
    Int64,
    /// 64-bit floats (measures: fares, tips, distances).
    Float64,
    /// Dictionary-encoded strings (categorical attributes).
    Str,
    /// 2-D points (geospatial locations).
    Point,
}

impl ColumnType {
    /// A short name for the type, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Int64 => "Int64",
            ColumnType::Float64 => "Float64",
            ColumnType::Str => "Str",
            ColumnType::Point => "Point",
        }
    }

    /// Whether the type can serve as a cubed (grouping) attribute.
    pub fn is_categorical(self) -> bool {
        matches!(self, ColumnType::Int64 | ColumnType::Str)
    }

    /// Approximate in-memory width of one value of this type, in bytes.
    /// Used for the memory-footprint accounting of materialized samples.
    pub fn byte_width(self) -> usize {
        match self {
            ColumnType::Int64 | ColumnType::Float64 => 8,
            // Dict code + amortized share of the dictionary entry.
            ColumnType::Str => 12,
            ColumnType::Point => 16,
        }
    }
}

/// A 2-D point (longitude/latitude or projected metres — the engine is
/// agnostic; distance semantics are chosen by the caller).
// repr(C) pins the x,y layout so snapshot blocks of interleaved f64
// pairs can be viewed as `[Point]` without decoding.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn euclidean(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt on hot paths where only
    /// comparisons matter).
    #[inline]
    pub fn euclidean_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance to `other`.
    #[inline]
    pub fn manhattan(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

/// A dynamically-typed scalar value: the row-oriented interface of the
/// engine (ingestion, query results, SQL literals).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int64(i64),
    /// 64-bit float.
    Float64(f64),
    /// Owned string.
    Str(String),
    /// 2-D point.
    Point(Point),
}

impl Value {
    /// A short name for the runtime type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int64(_) => "Int64",
            Value::Float64(_) => "Float64",
            Value::Str(_) => "Str",
            Value::Point(_) => "Point",
        }
    }

    /// The [`ColumnType`] this value naturally belongs to.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Int64(_) => ColumnType::Int64,
            Value::Float64(_) => ColumnType::Float64,
            Value::Str(_) => ColumnType::Str,
            Value::Point(_) => ColumnType::Point,
        }
    }

    /// Extract an `i64`, if this is an integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract an `f64`. Integers widen losslessly; other types yield `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float64(v) => Some(*v),
            Value::Int64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extract a string slice, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a point, if this is a point value.
    pub fn as_point(&self) -> Option<Point> {
        match self {
            Value::Point(p) => Some(*p),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Point> for Value {
    fn from(v: Point) -> Self {
        Value::Point(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Point(p) => write!(f, "({}, {})", p.x, p.y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.euclidean(&b), 5.0);
        assert_eq!(a.euclidean_sq(&b), 25.0);
        assert_eq!(a.manhattan(&b), 7.0);
        // Symmetry.
        assert_eq!(a.euclidean(&b), b.euclidean(&a));
        assert_eq!(a.manhattan(&b), b.manhattan(&a));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3i64).as_i64(), Some(3));
        assert_eq!(Value::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::from(2.5f64).as_f64(), Some(2.5));
        assert_eq!(Value::from("cash").as_str(), Some("cash"));
        assert_eq!(Value::from(Point::new(1.0, 2.0)).as_point(), Some(Point::new(1.0, 2.0)));
        // Cross-type extraction fails rather than coercing.
        assert_eq!(Value::from("cash").as_f64(), None);
        assert_eq!(Value::from(1.5f64).as_i64(), None);
    }

    #[test]
    fn categorical_types() {
        assert!(ColumnType::Int64.is_categorical());
        assert!(ColumnType::Str.is_categorical());
        assert!(!ColumnType::Float64.is_categorical());
        assert!(!ColumnType::Point.is_categorical());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::from(7i64).to_string(), "7");
        assert_eq!(Value::from("x").to_string(), "x");
        assert_eq!(Value::from(Point::new(1.0, 2.0)).to_string(), "(1, 2)");
    }
}
