//! Function 1 of the paper: relative error of the statistical mean,
//! `ABS((AVG(Raw) − AVG(Sam)) / AVG(Raw))`.

use super::{AccuracyLoss, REL_EPS};
use crate::sampling::{run_incremental_greedy, IncrementalEval};
use tabula_storage::agg::SumCount;
use tabula_storage::{RowId, Table};

/// Statistical-mean accuracy loss over one numeric target attribute.
#[derive(Debug, Clone)]
pub struct MeanLoss {
    /// Column index of the target attribute.
    attr: usize,
}

impl MeanLoss {
    /// Loss over the numeric column at index `attr`.
    pub fn new(attr: usize) -> Self {
        MeanLoss { attr }
    }

    #[inline]
    fn value(&self, table: &Table, row: RowId) -> f64 {
        table
            .column(self.attr)
            .as_f64_slice()
            .map(|s| s[row as usize])
            .or_else(|| table.column(self.attr).as_i64_slice().map(|s| s[row as usize] as f64))
            .expect("MeanLoss target attribute must be numeric")
    }

    /// The relative error between a raw mean and a sample mean, with the
    /// conventions the trait contract requires.
    pub(crate) fn relative_error(raw: Option<f64>, sample: Option<f64>) -> f64 {
        match (raw, sample) {
            (None, _) => 0.0,
            (Some(_), None) => f64::INFINITY,
            (Some(r), Some(s)) => (r - s).abs() / r.abs().max(REL_EPS),
        }
    }
}

/// Sample context: the sample's mean.
pub struct MeanCtx {
    mean: Option<f64>,
}

impl AccuracyLoss for MeanLoss {
    type State = SumCount;
    type SampleCtx = MeanCtx;

    fn name(&self) -> &'static str {
        "statistical_mean"
    }

    fn state_depends_on_sample(&self) -> bool {
        false
    }

    fn prepare(&self, table: &Table, sample: &[RowId]) -> MeanCtx {
        let mut sc = SumCount::default();
        for &r in sample {
            sc.add(self.value(table, r));
        }
        MeanCtx { mean: sc.mean() }
    }

    fn fold(&self, _ctx: &MeanCtx, state: &mut SumCount, table: &Table, row: RowId) {
        state.add(self.value(table, row));
    }

    fn finish(&self, ctx: &MeanCtx, state: &SumCount) -> f64 {
        Self::relative_error(state.mean(), ctx.mean)
    }

    fn signature(&self, table: &Table, rows: &[RowId]) -> [f64; 2] {
        if rows.is_empty() {
            return [0.0, 0.0];
        }
        let sum: f64 = rows.iter().map(|&r| self.value(table, r)).sum();
        [sum / rows.len() as f64, 0.0]
    }

    fn sample_greedy(&self, table: &Table, raw: &[RowId], theta: f64) -> Vec<RowId> {
        let values: Vec<f64> = raw.iter().map(|&r| self.value(table, r)).collect();
        let mut raw_state = SumCount::default();
        for &v in &values {
            raw_state.add(v);
        }
        let eval = MeanGreedy { values, raw_mean: raw_state.mean(), sample: SumCount::default() };
        run_incremental_greedy(eval, raw, theta)
    }
}

/// Incremental greedy evaluator: O(1) per candidate.
struct MeanGreedy {
    /// Target values aligned with the raw row list.
    values: Vec<f64>,
    raw_mean: Option<f64>,
    sample: SumCount,
}

impl IncrementalEval for MeanGreedy {
    fn current(&self) -> f64 {
        MeanLoss::relative_error(self.raw_mean, self.sample.mean())
    }

    fn loss_if_added(&self, idx: usize) -> f64 {
        let mut s = self.sample;
        s.add(self.values[idx]);
        MeanLoss::relative_error(self.raw_mean, s.mean())
    }

    fn add(&mut self, idx: usize) {
        self.sample.add(self.values[idx]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabula_storage::{ColumnType, Field, Schema, TableBuilder};

    fn table(values: &[f64]) -> Table {
        let schema = Schema::new(vec![Field::new("v", ColumnType::Float64)]);
        let mut b = TableBuilder::new(schema);
        for &v in values {
            b.push_row(&[v.into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn exact_relative_error() {
        let t = table(&[2.0, 4.0, 6.0, 8.0]); // mean 5
        let loss = MeanLoss::new(0);
        let all: Vec<RowId> = t.all_rows();
        // Sample {4, 6}: mean 5 → zero loss.
        assert!(loss.loss(&t, &all, &[1, 2]) < 1e-12);
        // Sample {2}: mean 2 → |5−2|/5 = 0.6.
        assert!((loss.loss(&t, &all, &[0]) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn raw_mean_near_zero_is_guarded() {
        let t = table(&[-1.0, 1.0]); // mean 0
        let loss = MeanLoss::new(0);
        let l = loss.loss(&t, &[0, 1], &[0]);
        assert!(l.is_finite() && l > 0.0); // guarded, not NaN/∞ division
    }

    #[test]
    fn greedy_reaches_tight_threshold() {
        let values: Vec<f64> = (0..200).map(|i| (i % 37) as f64 + 0.5).collect();
        let t = table(&values);
        let loss = MeanLoss::new(0);
        let all: Vec<RowId> = t.all_rows();
        for theta in [0.2, 0.05, 0.01, 0.001] {
            let sample = loss.sample_greedy(&t, &all, theta);
            let achieved = loss.loss(&t, &all, &sample);
            assert!(achieved <= theta, "θ={theta}: achieved {achieved}");
            // Tight thresholds should still need only a handful of tuples:
            // the greedy picks values that steer the sample mean directly.
            assert!(sample.len() <= 10, "θ={theta}: sample size {}", sample.len());
        }
    }

    #[test]
    fn works_on_integer_columns() {
        let schema = Schema::new(vec![Field::new("v", ColumnType::Int64)]);
        let mut b = TableBuilder::new(schema);
        for v in [1i64, 2, 3, 4] {
            b.push_row(&[v.into()]).unwrap();
        }
        let t = b.finish();
        let loss = MeanLoss::new(0);
        assert!((loss.loss(&t, &[0, 1, 2, 3], &[1, 2]) - 0.0).abs() < 1e-12);
    }
}
