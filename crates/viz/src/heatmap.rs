//! Heat-map rendering over point data — the paper's headline visual
//! analysis task (Figures 1 and 2).
//!
//! A heat map here is a `W × H` density grid over a bounding box, with a
//! Gaussian-ish splat per point (so sparse samples produce smooth maps,
//! like Tableau's density marks), normalized and color-mapped into an RGB
//! pixel buffer. [`Heatmap::diff`] quantifies how different two maps look
//! — the number the paper's Figure 2 narrative ("SampleFirst misses the
//! airport") makes visually.

use tabula_storage::Point;

/// Heat-map configuration.
#[derive(Debug, Clone, Copy)]
pub struct HeatmapConfig {
    /// Grid width in cells.
    pub width: usize,
    /// Grid height in cells.
    pub height: usize,
    /// Bounding box: min corner.
    pub min: Point,
    /// Bounding box: max corner.
    pub max: Point,
    /// Splat radius in cells (0 = plain binning).
    pub splat_radius: usize,
}

impl Default for HeatmapConfig {
    fn default() -> Self {
        // The unit square used by the synthetic NYC generator.
        HeatmapConfig {
            width: 128,
            height: 128,
            min: Point::new(0.0, 0.0),
            max: Point::new(1.0, 1.0),
            splat_radius: 2,
        }
    }
}

/// A rendered heat map: densities plus the rendered pixels.
#[derive(Debug, Clone)]
pub struct Heatmap {
    config: HeatmapConfig,
    /// Accumulated density per cell, row-major, normalized to `[0, 1]`.
    density: Vec<f64>,
}

impl Heatmap {
    /// Render a heat map of `points` under `config`.
    pub fn render(points: &[Point], config: HeatmapConfig) -> Self {
        assert!(config.width > 0 && config.height > 0, "empty grid");
        let mut density = vec![0.0f64; config.width * config.height];
        let span_x = (config.max.x - config.min.x).max(1e-12);
        let span_y = (config.max.y - config.min.y).max(1e-12);
        let r = config.splat_radius as isize;
        for p in points {
            let fx = (p.x - config.min.x) / span_x * config.width as f64;
            let fy = (p.y - config.min.y) / span_y * config.height as f64;
            let cx = (fx.floor() as isize).clamp(0, config.width as isize - 1);
            let cy = (fy.floor() as isize).clamp(0, config.height as isize - 1);
            for dy in -r..=r {
                for dx in -r..=r {
                    let (x, y) = (cx + dx, cy + dy);
                    if x < 0 || y < 0 || x >= config.width as isize || y >= config.height as isize {
                        continue;
                    }
                    // Gaussian falloff with σ ≈ radius/2.
                    let d2 = (dx * dx + dy * dy) as f64;
                    let sigma = (config.splat_radius as f64 / 2.0).max(0.5);
                    let w = (-d2 / (2.0 * sigma * sigma)).exp();
                    density[y as usize * config.width + x as usize] += w;
                }
            }
        }
        // Normalize to [0, 1] so maps of different sample sizes compare.
        let max = density.iter().cloned().fold(0.0f64, f64::max);
        if max > 0.0 {
            for d in &mut density {
                *d /= max;
            }
        }
        Heatmap { config, density }
    }

    /// The configuration the map was rendered with.
    pub fn config(&self) -> &HeatmapConfig {
        &self.config
    }

    /// Normalized density at `(x, y)`.
    pub fn density_at(&self, x: usize, y: usize) -> f64 {
        self.density[y * self.config.width + x]
    }

    /// The normalized density grid, row-major.
    pub fn densities(&self) -> &[f64] {
        &self.density
    }

    /// Mean absolute per-cell difference between two maps rendered with
    /// the same configuration, in `[0, 1]`. Two maps of the same
    /// population rendered from a good sample and from the raw data score
    /// near 0; a map missing a cluster scores visibly higher.
    pub fn diff(&self, other: &Heatmap) -> f64 {
        assert_eq!(self.density.len(), other.density.len(), "grid shapes differ");
        let n = self.density.len() as f64;
        self.density.iter().zip(&other.density).map(|(a, b)| (a - b).abs()).sum::<f64>() / n
    }

    /// Fraction of cells that are "hot" (density above `threshold`) in
    /// `self` but cold in `other` — detects missing clusters
    /// specifically.
    pub fn missing_hot_cells(&self, other: &Heatmap, threshold: f64) -> f64 {
        let hot: usize = self.density.iter().filter(|&&d| d > threshold).count();
        if hot == 0 {
            return 0.0;
        }
        let missed = self
            .density
            .iter()
            .zip(&other.density)
            .filter(|(&a, &b)| a > threshold && b <= threshold / 4.0)
            .count();
        missed as f64 / hot as f64
    }

    /// Render to RGB pixels with a perceptual-ish "inferno-like" ramp.
    pub fn to_rgb(&self) -> Vec<[u8; 3]> {
        self.density.iter().map(|&d| colormap(d)).collect()
    }

    /// Serialize as a binary PPM (P6) image.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.density.len() * 3 + 32);
        out.extend_from_slice(
            format!("P6\n{} {}\n255\n", self.config.width, self.config.height).as_bytes(),
        );
        for px in self.to_rgb() {
            out.extend_from_slice(&px);
        }
        out
    }
}

/// Simple dark-blue → orange → yellow ramp.
fn colormap(v: f64) -> [u8; 3] {
    let v = v.clamp(0.0, 1.0);
    let r = (255.0 * (v * 1.6).min(1.0)) as u8;
    let g = (255.0 * (v * v * 1.2).min(1.0)) as u8;
    let b = (255.0 * (0.3 + 0.4 * (1.0 - v) - 0.3 * v).clamp(0.0, 1.0)) as u8;
    [r, g, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(cx: f64, cy: f64, n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 0.618;
                Point::new(cx + 0.01 * a.sin(), cy + 0.01 * a.cos())
            })
            .collect()
    }

    #[test]
    fn density_concentrates_where_points_are() {
        let pts = cluster(0.25, 0.25, 200);
        let hm = Heatmap::render(&pts, HeatmapConfig::default());
        let near = hm.density_at(32, 32); // (0.25, 0.25) in a 128-grid
        let far = hm.density_at(100, 100);
        assert!(near > 0.5, "near {near}");
        assert!(far < 0.05, "far {far}");
    }

    #[test]
    fn identical_point_sets_have_zero_diff() {
        let pts = cluster(0.5, 0.5, 100);
        let a = Heatmap::render(&pts, HeatmapConfig::default());
        let b = Heatmap::render(&pts, HeatmapConfig::default());
        assert_eq!(a.diff(&b), 0.0);
    }

    #[test]
    fn missing_cluster_is_detected() {
        // Full data: two clusters. Bad sample: only one.
        let mut full = cluster(0.2, 0.2, 300);
        full.extend(cluster(0.8, 0.8, 60));
        let bad_sample = cluster(0.2, 0.2, 50);
        let cfg = HeatmapConfig::default();
        let full_map = Heatmap::render(&full, cfg);
        let bad_map = Heatmap::render(&bad_sample, cfg);
        let good_sample: Vec<Point> = full.iter().step_by(2).cloned().collect();
        let good_map = Heatmap::render(&good_sample, cfg);
        assert!(full_map.diff(&bad_map) > full_map.diff(&good_map));
        // The minority cluster normalizes to ~0.2 density (60 vs 300
        // points), so a 0.1 threshold marks it hot; the bad sample misses
        // it entirely while the uniform sample preserves it.
        assert!(
            full_map.missing_hot_cells(&bad_map, 0.1) > full_map.missing_hot_cells(&good_map, 0.1)
        );
    }

    #[test]
    fn empty_input_renders_blank() {
        let hm = Heatmap::render(&[], HeatmapConfig::default());
        assert!(hm.densities().iter().all(|&d| d == 0.0));
    }

    #[test]
    fn out_of_bounds_points_clamp_into_the_grid() {
        let pts = vec![Point::new(-5.0, 0.5), Point::new(5.0, 0.5)];
        let hm = Heatmap::render(&pts, HeatmapConfig::default());
        // Mass lands on the left/right edges rather than vanishing.
        let left: f64 = (0..128).map(|y| hm.density_at(0, y)).sum();
        let right: f64 = (0..128).map(|y| hm.density_at(127, y)).sum();
        assert!(left > 0.0 && right > 0.0);
    }

    #[test]
    fn ppm_header_and_size() {
        let pts = cluster(0.5, 0.5, 10);
        let cfg = HeatmapConfig { width: 16, height: 8, ..Default::default() };
        let ppm = Heatmap::render(&pts, cfg).to_ppm();
        assert!(ppm.starts_with(b"P6\n16 8\n255\n"));
        assert_eq!(ppm.len(), b"P6\n16 8\n255\n".len() + 16 * 8 * 3);
    }

    #[test]
    fn splat_radius_zero_is_plain_binning() {
        let pts = vec![Point::new(0.5, 0.5)];
        let cfg = HeatmapConfig { splat_radius: 0, ..Default::default() };
        let hm = Heatmap::render(&pts, cfg);
        let nonzero = hm.densities().iter().filter(|&&d| d > 0.0).count();
        assert_eq!(nonzero, 1);
    }
}
