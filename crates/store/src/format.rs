//! On-disk layout constants and the manifest schema.
//!
//! The manifest is the only JSON in the file; everything else is raw
//! little-endian words. It is deliberately small (one entry per block) so
//! parsing it is O(blocks), not O(rows).

use serde::{Deserialize, Serialize};

use crate::{Result, StoreError};

/// File magic, present in both the header and the footer. The trailing
/// `1` is cosmetic; real versioning lives in the header `version` field.
pub const MAGIC: [u8; 8] = *b"TABSNAP1";

/// Current snapshot format version. Bump on any incompatible layout
/// change; readers reject files with a different header version.
pub const FORMAT_VERSION: u32 = 1;

/// Header: magic (8) + version u32 (4) + reserved u32 (4).
pub const HEADER_LEN: u64 = 16;

/// Footer: manifest_offset + manifest_len + manifest_crc64 + file_crc64 +
/// reserved (5 × u64) + magic (8).
pub const FOOTER_LEN: u64 = 48;

/// One block's entry in the manifest table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockDesc {
    /// Block name, unique within the snapshot (e.g. `col:2:codes`).
    pub name: String,
    /// Absolute byte offset of the payload in the file. Always a
    /// multiple of 8 so typed reinterpretation is aligned.
    pub offset: u64,
    /// Payload length in bytes (unpadded).
    pub len: u64,
    /// Logical row / entry count, for sanity checks at decode time.
    pub rows: u64,
    /// CRC-64 of the payload bytes.
    pub crc64: u64,
}

/// The snapshot manifest: version echo, provenance, and the block table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version, must match the header (two independently damaged
    /// copies cannot agree by accident).
    pub format_version: u32,
    /// Serving-generation epoch at write time, stamped back into the
    /// server on install for provenance.
    pub epoch: u64,
    /// Human-readable writer identity (`tabula-store/<crate version>`).
    pub producer: String,
    /// Writer-defined payload (JSON string). `tabula-core` stores the
    /// cube's attrs, θ, key encoding and build stats here; the store
    /// layer never interprets it.
    pub meta: String,
    /// The block table, in file order.
    pub blocks: Vec<BlockDesc>,
}

impl Manifest {
    /// Look up a block by name.
    pub fn block(&self, name: &str) -> Option<&BlockDesc> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Look up a block the loader cannot proceed without.
    pub fn require(&self, name: &str) -> Result<&BlockDesc> {
        self.block(name).ok_or_else(|| StoreError::MissingBlock(name.to_string()))
    }
}
