//! Vendored, std-only stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API subset it actually uses. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic per seed, which is
//! all the repo's reproducibility story requires. Streams differ from the
//! real `rand` crate's; nothing in the codebase depends on the exact
//! values, only on determinism and reasonable uniformity.

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's full range.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types `Rng::gen_range` can sample uniformly. The blanket
/// [`SampleRange`] impls below go through this trait, mirroring the real
/// `rand`'s shape so type inference behaves identically (the element type
/// of the range literal unifies directly with `gen_range`'s return type).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_single<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift (Lemire) keeps bias negligible for the
                // spans this repo draws from (all far below 2^64).
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_single_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_single<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
    fn sample_single_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_single<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        assert!(lo < hi, "gen_range: empty range");
        lo + (f64::draw(rng) as f32) * (hi - lo)
    }
    fn sample_single_inclusive<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        assert!(lo <= hi, "gen_range: empty range");
        lo + (f64::draw(rng) as f32) * (hi - lo)
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_single_inclusive(lo, hi, rng)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::draw(self) < p
    }

    /// A draw from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 — small, fast, good enough for
    /// sampling work (the role `rand`'s `SmallRng` plays).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the repo only needs determinism, not CSPRNG strength.
    pub type StdRng = SmallRng;
}

/// Sequence-related helpers.
pub mod seq {
    /// Index sampling without replacement.
    pub mod index {
        use crate::{Rng, RngCore};

        /// The sampled indices, in selection order.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The indices as a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length` uniformly,
        /// via a partial Fisher–Yates shuffle. Panics when
        /// `amount > length` (mirrors `rand`).
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} indices from a pool of {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::index::sample;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5..4.5f64);
            assert!((-2.5..4.5).contains(&f));
            let i = rng.gen_range(-10..=10i64);
            assert!((-10..=10).contains(&i));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let idx: Vec<usize> = sample(&mut rng, 100, 30).into_iter().collect();
        assert_eq!(idx.len(), 30);
        assert!(idx.iter().all(|&i| i < 100));
        let mut dedup = idx.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 30);
        // Full sample is a permutation.
        let all: Vec<usize> = sample(&mut rng, 10, 10).into_iter().collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
