//! Corruption-injection matrix for the snapshot store.
//!
//! For every region of a snapshot file — header magic, version word,
//! reserved bytes, each block, the manifest, every footer field — inject
//! a single bit flip and a truncation, and assert the load fails with a
//! **typed [`StoreError`] naming the damaged region**: no panic, no
//! silent success, and (because detection happens at load, before a cube
//! is ever constructed) no possibility of a wrong answer. A final sweep
//! flips one bit in *every* byte of the file to prove there is no
//! unprotected gap anywhere in the format.

use std::sync::Arc;

use tabula::core::builder::{MaterializationMode, SamplingCubeBuilder};
use tabula::core::loss::MeanLoss;
use tabula::core::SamplingCube;
use tabula::data::example_dcm_table;
use tabula::store::{Snapshot, SnapshotWriter, StoreError, FOOTER_LEN, HEADER_LEN};

fn snapshot_bytes() -> Vec<u8> {
    let t = Arc::new(example_dcm_table());
    let fare = t.schema().index_of("fare").unwrap();
    let cube =
        SamplingCubeBuilder::new(Arc::clone(&t), &["D", "C", "M"], MeanLoss::new(fare), 0.10)
            .seed(1)
            .mode(MaterializationMode::Tabula)
            .build()
            .unwrap();
    cube.snapshot_bytes(42).unwrap()
}

/// Load a (possibly damaged) image through both the store layer and the
/// cube loader, asserting the two agree on failure, and return the store
/// layer's error.
fn load_err(bytes: &[u8]) -> StoreError {
    let store_result = Snapshot::from_bytes(bytes.to_vec());
    let cube_result = SamplingCube::from_snapshot_bytes(bytes.to_vec());
    match store_result {
        Ok(_) => {
            panic!("corrupted snapshot loaded successfully ({} bytes)", bytes.len())
        }
        Err(e) => {
            assert!(
                cube_result.is_err(),
                "store layer rejected the image but the cube loader accepted it"
            );
            assert!(!e.to_string().is_empty());
            e
        }
    }
}

fn flipped(bytes: &[u8], byte: usize, bit: u8) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[byte] ^= 1 << bit;
    out
}

#[test]
fn clean_snapshot_loads() {
    let bytes = snapshot_bytes();
    let snap = Snapshot::from_bytes(bytes.clone()).unwrap();
    assert_eq!(snap.epoch(), 42);
    assert!(snap.manifest().blocks.len() >= 8, "expected a full block inventory");
    let (cube, info) = SamplingCube::from_snapshot_bytes(bytes).unwrap();
    assert_eq!(info.epoch, 42);
    assert!(cube.materialized_cells() > 0);
}

#[test]
fn header_magic_flip_is_bad_magic() {
    let bytes = snapshot_bytes();
    for byte in 0..8 {
        let e = load_err(&flipped(&bytes, byte, 3));
        assert!(
            matches!(e, StoreError::BadMagic { region: "magic" }),
            "header magic byte {byte}: got {e}"
        );
    }
}

#[test]
fn header_version_flip_is_bad_version() {
    let bytes = snapshot_bytes();
    let e = load_err(&flipped(&bytes, 8, 0));
    match e {
        StoreError::BadVersion { found, supported } => {
            assert_ne!(found, supported);
        }
        other => panic!("expected BadVersion, got {other}"),
    }
}

#[test]
fn header_reserved_flip_is_file_checksum_mismatch() {
    let bytes = snapshot_bytes();
    // Reserved header bytes are inside the whole-file CRC's coverage.
    let e = load_err(&flipped(&bytes, 13, 5));
    assert!(
        matches!(&e, StoreError::ChecksumMismatch { region, .. } if region == "file"),
        "got {e}"
    );
}

#[test]
fn every_block_flip_names_the_block() {
    let bytes = snapshot_bytes();
    let clean = Snapshot::from_bytes(bytes.clone()).unwrap();
    let blocks: Vec<(String, u64, u64)> =
        clean.manifest().blocks.iter().map(|b| (b.name.clone(), b.offset, b.len)).collect();
    assert!(!blocks.is_empty());
    for (name, offset, len) in blocks {
        if len == 0 {
            continue; // nothing to flip inside an empty block
        }
        // First, middle and last byte of the payload.
        for pos in [offset, offset + len / 2, offset + len - 1] {
            let e = load_err(&flipped(&bytes, pos as usize, 2));
            let want = format!("block:{name}");
            assert!(
                matches!(&e, StoreError::ChecksumMismatch { region, .. } if *region == want),
                "block {name} byte {pos}: got {e}"
            );
        }
    }
}

#[test]
fn manifest_flip_names_the_manifest() {
    let bytes = snapshot_bytes();
    let footer = &bytes[bytes.len() - FOOTER_LEN as usize..];
    let manifest_offset = u64::from_le_bytes(footer[0..8].try_into().unwrap()) as usize;
    let manifest_len = u64::from_le_bytes(footer[8..16].try_into().unwrap()) as usize;
    for pos in
        [manifest_offset, manifest_offset + manifest_len / 2, manifest_offset + manifest_len - 1]
    {
        let e = load_err(&flipped(&bytes, pos, 6));
        assert!(
            matches!(&e, StoreError::ChecksumMismatch { region, .. } if region == "manifest"),
            "manifest byte {pos}: got {e}"
        );
    }
}

#[test]
fn footer_field_flips_are_detected_and_described() {
    let bytes = snapshot_bytes();
    let base = bytes.len() - FOOTER_LEN as usize;
    // (field byte range within the footer, expected mention in the error)
    let fields: [(std::ops::Range<usize>, &str); 5] = [
        (0..8, "manifest"),   // manifest_offset → bounds or checksum failure
        (8..16, "manifest"),  // manifest_len
        (16..24, "manifest"), // manifest_crc64
        (24..32, "file"),     // file_crc64
        (32..40, "footer"),   // reserved, must be zero
    ];
    for (range, mention) in fields {
        for byte in [range.start, range.end - 1] {
            for bit in [0u8, 7] {
                let e = load_err(&flipped(&bytes, base + byte, bit));
                let msg = e.to_string();
                assert!(
                    msg.contains(mention),
                    "footer byte {byte} bit {bit}: error {msg:?} does not mention {mention:?}"
                );
            }
        }
    }
    // Footer magic.
    for byte in 40..48 {
        let e = load_err(&flipped(&bytes, base + byte, 1));
        assert!(matches!(e, StoreError::BadMagic { region: "footer" }), "footer magic byte {byte}");
    }
}

#[test]
fn truncation_at_every_region_boundary_is_detected() {
    let bytes = snapshot_bytes();
    let clean = Snapshot::from_bytes(bytes.clone()).unwrap();
    let mut cuts: Vec<usize> = vec![
        0,
        1,
        HEADER_LEN as usize - 1,
        HEADER_LEN as usize,
        bytes.len() - FOOTER_LEN as usize,
        bytes.len() - 1,
    ];
    for b in &clean.manifest().blocks {
        cuts.push(b.offset as usize);
        cuts.push((b.offset + b.len / 2) as usize);
    }
    drop(clean);
    for cut in cuts {
        let e = load_err(&bytes[..cut]);
        // Whatever check fires first, it must be one of the structural
        // variants — never a success and never a panic.
        assert!(
            matches!(
                e,
                StoreError::Truncated { .. }
                    | StoreError::BadMagic { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::BadVersion { .. }
            ),
            "cut at {cut}: got {e}"
        );
    }
}

#[test]
fn stale_format_version_is_rejected_with_bad_version() {
    // Author a structurally valid file claiming an old (and a future)
    // format version; the reader must refuse both before touching blocks.
    for version in [0u32, 2, u32::MAX] {
        let mut w = SnapshotWriter::with_version(version);
        w.add_block("payload", 1, &42u64.to_le_bytes()).unwrap();
        let bytes = w.finish().unwrap();
        match Snapshot::from_bytes(bytes) {
            Err(StoreError::BadVersion { found, supported }) => {
                assert_eq!(found, version);
                assert_ne!(found, supported);
            }
            other => panic!(
                "version {version}: expected BadVersion, got {other:?}",
                other = other.map(|_| "Ok")
            ),
        }
    }
}

#[test]
fn no_unprotected_byte_anywhere_in_the_file() {
    // Flip one bit in every single byte of the image: each must be
    // detected by some validation layer. This proves the format has no
    // gap (padding, reserved words, unreferenced ranges included).
    let bytes = snapshot_bytes();
    for byte in 0..bytes.len() {
        let damaged = flipped(&bytes, byte, (byte % 8) as u8);
        assert!(
            Snapshot::from_bytes(damaged).is_err(),
            "bit flip at byte {byte}/{} went undetected",
            bytes.len()
        );
    }
}

/// A snapshot whose columns are all force-encoded, so the image carries
/// `:rle` / `:for` blocks instead of raw column words.
fn encoded_snapshot_bytes() -> Vec<u8> {
    use tabula::storage::{EncodingMode, Table};
    let t = example_dcm_table();
    let cols = (0..t.schema().fields().len())
        .map(|i| {
            let mut c = t.column(i).clone();
            c.encode_for_freeze(EncodingMode::Force);
            c
        })
        .collect();
    let t = Arc::new(Table::from_columns(t.schema().clone(), cols).unwrap());
    let fare = t.schema().index_of("fare").unwrap();
    let cube =
        SamplingCubeBuilder::new(Arc::clone(&t), &["D", "C", "M"], MeanLoss::new(fare), 0.10)
            .seed(1)
            .mode(MaterializationMode::Tabula)
            .build()
            .unwrap();
    cube.snapshot_bytes(42).unwrap()
}

#[test]
fn encoded_block_corruption_is_typed_and_never_a_wrong_answer() {
    let bytes = encoded_snapshot_bytes();
    let clean = Snapshot::from_bytes(bytes.clone()).unwrap();
    let enc_blocks: Vec<(String, u64, u64)> = clean
        .manifest()
        .blocks
        .iter()
        .filter(|b| b.name.ends_with(":rle") || b.name.ends_with(":for"))
        .map(|b| (b.name.clone(), b.offset, b.len))
        .collect();
    assert!(!enc_blocks.is_empty(), "force-encoded cube must persist encoded blocks");
    // The clean image restores: the encoded blocks are real and load.
    drop(clean);
    let (cube, _) = SamplingCube::from_snapshot_bytes(bytes.clone()).unwrap();
    assert!(cube.materialized_cells() > 0);

    for (name, offset, len) in enc_blocks {
        // Truncating inside an encoded payload is detected before any
        // column is built — a typed error, never a short column.
        for cut in [offset as usize, (offset + len / 2) as usize, (offset + len) as usize - 1] {
            let e = load_err(&bytes[..cut]);
            assert!(
                matches!(
                    e,
                    StoreError::Truncated { .. }
                        | StoreError::BadMagic { .. }
                        | StoreError::ChecksumMismatch { .. }
                        | StoreError::BadVersion { .. }
                ),
                "{name} cut at {cut}: got {e}"
            );
        }
        // A bit flip inside the encoded payload is pinned to the block.
        let e = load_err(&flipped(&bytes, (offset + len / 2) as usize, 5));
        let want = format!("block:{name}");
        assert!(
            matches!(&e, StoreError::ChecksumMismatch { region, .. } if *region == want),
            "{name}: got {e}"
        );
    }
}
