//! Table schemas.

use crate::types::ColumnType;
use crate::{Result, StorageError};
use serde::{Deserialize, Serialize};

/// A named, typed field of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name as referenced by SQL and the APIs.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Field { name: name.into(), ty }
    }
}

/// An ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields. Duplicate names are a programming error
    /// and panic early.
    pub fn new(fields: Vec<Field>) -> Self {
        for (i, f) in fields.iter().enumerate() {
            for g in &fields[i + 1..] {
                assert_ne!(f.name, g.name, "duplicate column name {:?}", f.name);
            }
        }
        Schema { fields }
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| StorageError::UnknownColumn(name.to_owned()))
    }

    /// The field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Approximate bytes one row occupies under this schema; used by the
    /// memory-footprint accounting of materialized samples.
    pub fn row_bytes(&self) -> usize {
        self.fields.iter().map(|f| f.ty.byte_width()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::new(vec![
            Field::new("payment_type", ColumnType::Str),
            Field::new("fare", ColumnType::Float64),
            Field::new("pickup", ColumnType::Point),
        ])
    }

    #[test]
    fn index_lookup() {
        let s = sample_schema();
        assert_eq!(s.index_of("fare").unwrap(), 1);
        assert!(matches!(s.index_of("missing"), Err(StorageError::UnknownColumn(_))));
        assert_eq!(s.field(0).name, "payment_type");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn row_bytes_accounts_each_type() {
        let s = sample_schema();
        assert_eq!(s.row_bytes(), 12 + 8 + 16);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_panic() {
        Schema::new(vec![Field::new("a", ColumnType::Int64), Field::new("a", ColumnType::Str)]);
    }
}
