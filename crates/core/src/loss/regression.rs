//! Function 3 of the paper: the linear-regression loss
//! `ABS(angle(Raw) − angle(Sam))` — the angle difference (in degrees)
//! between the OLS regression lines fitted to the raw data and to the
//! sample. The paper's running example regresses tip amount on fare
//! amount.

use super::AccuracyLoss;
use crate::sampling::{run_incremental_greedy, IncrementalEval};
use tabula_storage::agg::Moments2D;
use tabula_storage::{RowId, Table};

/// Regression-angle accuracy loss over `(x, y)` numeric attributes.
#[derive(Debug, Clone)]
pub struct RegressionLoss {
    x_col: usize,
    y_col: usize,
}

impl RegressionLoss {
    /// Loss over the regression of column `y_col` on column `x_col`.
    pub fn new(x_col: usize, y_col: usize) -> Self {
        RegressionLoss { x_col, y_col }
    }

    #[inline]
    fn xy(&self, table: &Table, row: RowId) -> (f64, f64) {
        let get = |col: usize| -> f64 {
            table
                .column(col)
                .as_f64_slice()
                .map(|s| s[row as usize])
                .or_else(|| table.column(col).as_i64_slice().map(|s| s[row as usize] as f64))
                .expect("RegressionLoss attributes must be numeric")
        };
        (get(self.x_col), get(self.y_col))
    }

    /// Angle-difference with the conventions the trait contract requires:
    /// a degenerate raw line means there is nothing to approximate (loss
    /// 0); a sample unable to produce a line while raw can is infinitely
    /// wrong.
    pub(crate) fn angle_diff(raw: Option<f64>, sample: Option<f64>) -> f64 {
        match (raw, sample) {
            (None, _) => 0.0,
            (Some(_), None) => f64::INFINITY,
            (Some(r), Some(s)) => (r - s).abs(),
        }
    }
}

/// Sample context: the sample's regression-line angle.
pub struct RegressionCtx {
    angle: Option<f64>,
}

impl AccuracyLoss for RegressionLoss {
    type State = Moments2D;
    type SampleCtx = RegressionCtx;

    fn name(&self) -> &'static str {
        "regression_angle"
    }

    fn state_depends_on_sample(&self) -> bool {
        false
    }

    fn prepare(&self, table: &Table, sample: &[RowId]) -> RegressionCtx {
        let mut m = Moments2D::default();
        for &r in sample {
            let (x, y) = self.xy(table, r);
            m.add(x, y);
        }
        RegressionCtx { angle: m.angle_degrees() }
    }

    fn fold(&self, _ctx: &RegressionCtx, state: &mut Moments2D, table: &Table, row: RowId) {
        let (x, y) = self.xy(table, row);
        state.add(x, y);
    }

    fn finish(&self, ctx: &RegressionCtx, state: &Moments2D) -> f64 {
        if state.n == 0 {
            return 0.0;
        }
        Self::angle_diff(state.angle_degrees(), ctx.angle)
    }

    fn signature(&self, table: &Table, rows: &[RowId]) -> [f64; 2] {
        let mut m = Moments2D::default();
        for &r in rows {
            let (x, y) = self.xy(table, r);
            m.add(x, y);
        }
        // Degenerate sets park far away from every real angle.
        [m.angle_degrees().unwrap_or(1e6), 0.0]
    }

    fn sample_greedy(&self, table: &Table, raw: &[RowId], theta: f64) -> Vec<RowId> {
        let xys: Vec<(f64, f64)> = raw.iter().map(|&r| self.xy(table, r)).collect();
        let mut raw_m = Moments2D::default();
        for &(x, y) in &xys {
            raw_m.add(x, y);
        }
        let eval =
            RegGreedy { xys, raw_angle: raw_m.angle_degrees(), sample: Moments2D::default() };
        run_incremental_greedy(eval, raw, theta)
    }
}

/// Incremental greedy evaluator: O(1) per candidate.
struct RegGreedy {
    xys: Vec<(f64, f64)>,
    raw_angle: Option<f64>,
    sample: Moments2D,
}

impl IncrementalEval for RegGreedy {
    fn current(&self) -> f64 {
        RegressionLoss::angle_diff(self.raw_angle, self.sample.angle_degrees())
    }

    fn loss_if_added(&self, idx: usize) -> f64 {
        let mut m = self.sample;
        let (x, y) = self.xys[idx];
        m.add(x, y);
        RegressionLoss::angle_diff(self.raw_angle, m.angle_degrees())
    }

    fn add(&mut self, idx: usize) {
        let (x, y) = self.xys[idx];
        self.sample.add(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tabula_storage::{ColumnType, Field, Schema, TableBuilder};

    fn table(xys: &[(f64, f64)]) -> Table {
        let schema = Schema::new(vec![
            Field::new("fare", ColumnType::Float64),
            Field::new("tip", ColumnType::Float64),
        ]);
        let mut b = TableBuilder::new(schema);
        for &(x, y) in xys {
            b.push_row(&[x.into(), y.into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn identical_lines_have_zero_loss() {
        // All points on y = 0.2 x.
        let pts: Vec<(f64, f64)> = (1..30).map(|i| (i as f64, 0.2 * i as f64)).collect();
        let t = table(&pts);
        let loss = RegressionLoss::new(0, 1);
        let all: Vec<RowId> = t.all_rows();
        assert!(loss.loss(&t, &all, &[0, 10]) < 1e-9);
    }

    #[test]
    fn angle_difference_is_exact() {
        // Raw: slope 1 (45°). Sample of two points with slope 0 (0°).
        let pts = vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)];
        let mut t_pts = pts.clone();
        t_pts.push((10.0, 5.0));
        t_pts.push((11.0, 5.0)); // rows 4, 5: slope 0 pair
        let t = table(&t_pts);
        let loss = RegressionLoss::new(0, 1);
        let raw: Vec<RowId> = vec![0, 1, 2, 3];
        let l = loss.loss(&t, &raw, &[4, 5]);
        assert!((l - 45.0).abs() < 1e-9, "got {l}");
    }

    #[test]
    fn degenerate_cases_follow_contract() {
        let t = table(&[(1.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        let loss = RegressionLoss::new(0, 1);
        // Raw = two points with equal x: no line → loss 0 by convention.
        assert_eq!(loss.loss(&t, &[0, 1], &[2]), 0.0);
        // Raw has a line, sample of one point doesn't → ∞.
        assert!(loss.loss(&t, &[0, 2], &[1]).is_infinite());
    }

    #[test]
    fn greedy_hits_degree_thresholds() {
        let mut rng = SmallRng::seed_from_u64(77);
        // Noisy line y = 0.25x + 1 plus contaminating flat cluster.
        let mut pts: Vec<(f64, f64)> = (0..300)
            .map(|_| {
                let x = rng.gen_range(2.0..60.0);
                (x, 0.25 * x + 1.0 + rng.gen_range(-1.0..1.0))
            })
            .collect();
        pts.extend((0..50).map(|_| (rng.gen_range(2.0..60.0), 0.0)));
        let t = table(&pts);
        let loss = RegressionLoss::new(0, 1);
        let all: Vec<RowId> = t.all_rows();
        for theta in [10.0, 5.0, 1.0, 0.25] {
            let sample = loss.sample_greedy(&t, &all, theta);
            let achieved = loss.loss(&t, &all, &sample);
            assert!(achieved <= theta + 1e-9, "θ={theta}: {achieved}");
        }
    }
}
