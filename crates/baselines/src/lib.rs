//! # tabula-baselines
//!
//! The approaches the paper compares Tabula against (Section V):
//!
//! | Paper name      | Here                                  |
//! |-----------------|---------------------------------------|
//! | SampleFirst     | [`SampleFirst`] (two pre-built sizes) |
//! | SampleOnTheFly  | [`SampleOnTheFly`]                    |
//! | POIsam          | [`PoiSam`]                            |
//! | SnappyData      | [`SnappyLike`]                        |
//! | FullSamCube     | `MaterializationMode::FullSamCube`    |
//! | PartSamCube     | `MaterializationMode::PartSamCube`    |
//! | Tabula / Tabula\* | `MaterializationMode::{Tabula, TabulaStar}` |
//!
//! The cube-shaped approaches reuse `tabula-core`'s builder modes; this
//! crate implements the sampling-side baselines and the common
//! [`Approach`] interface the benchmark harness drives.

pub mod poisam;
pub mod sample_first;
pub mod sample_on_the_fly;
pub mod snappy;

pub use poisam::PoiSam;
pub use sample_first::SampleFirst;
pub use sample_on_the_fly::SampleOnTheFly;
pub use snappy::{AvgAnswer, SnappyLike};

use std::time::Duration;
use tabula_storage::{Predicate, RowId};

/// A query answer from a baseline: the sample handed to the dashboard
/// plus the data-system time spent producing it.
#[derive(Debug, Clone)]
pub struct ApproachAnswer {
    /// Sample rows (ids into the raw table).
    pub rows: Vec<RowId>,
    /// Wall time of query execution + any online sampling.
    pub data_system_time: Duration,
}

/// Common interface of the tuple-returning approaches.
pub trait Approach {
    /// Display name.
    fn name(&self) -> &'static str;
    /// Bytes of pre-built state held in memory (0 for purely online
    /// approaches).
    fn memory_bytes(&self) -> usize;
    /// Answer one dashboard query.
    fn query(&self, pred: &Predicate) -> ApproachAnswer;
}
