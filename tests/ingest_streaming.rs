//! End-to-end streaming ingestion: a live [`Server`] under concurrent
//! readers while the `tabula-ingest` pipeline folds appended batches into
//! fresh cube generations.
//!
//! Barrier-aligned (`fold_batches: 1` + `wait_folded` per batch) so every
//! round is exactly one generation: the epoch must bump once per fold
//! (answer cache invalidated exactly once), every acked row must be
//! readable at the barrier, and the θ guarantee must hold over a
//! dashboard workload after every fold. The fine-grained differential
//! equivalence sweep (streamed cube vs from-scratch build, across thread
//! counts) lives in `tabula-check`'s ingest lane.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tabula::core::loss::{AccuracyLoss, MeanLoss};
use tabula::core::{MaterializationMode, SamplingCube, SamplingCubeBuilder};
use tabula::data::{TaxiConfig, TaxiGenerator, Workload, CUBED_ATTRIBUTES};
use tabula::ingest::{IngestConfig, Ingestor, INGEST_FOLDS, INGEST_ROWS};
use tabula::obs::Registry;
use tabula::serve::{AnswerCache, Server};
use tabula::storage::Table;

const THETA: f64 = 0.05;
const BASE_ROWS: usize = 4_000;
const BATCH_ROWS: usize = 500;
const ROUNDS: usize = 3;

fn taxi(rows: usize, seed: u64) -> Arc<Table> {
    Arc::new(TaxiGenerator::new(TaxiConfig { rows, seed }).generate())
}

#[test]
fn streamed_generations_stay_fresh_and_guaranteed_under_readers() {
    let attrs = &CUBED_ATTRIBUTES[..3];
    let table = taxi(BASE_ROWS, 42);
    let registry = Arc::new(Registry::new());
    let fare = table.schema().index_of("fare_amount").unwrap();
    let loss = MeanLoss::new(fare);
    let cube: Arc<SamplingCube> = Arc::new(
        SamplingCubeBuilder::new(Arc::clone(&table), attrs, loss.clone(), THETA)
            .seed(42)
            .mode(MaterializationMode::Tabula)
            .build()
            .unwrap()
            .with_registry(&registry),
    );
    let srv = Arc::new(
        Server::with_cache(cube, AnswerCache::new(8 << 20, 4), Arc::clone(&registry)).unwrap(),
    );
    let workload = Workload::new(attrs).generate(&table, 20, 7).unwrap();

    // Barrier-aligned pipeline: one batch per fold, tight poll.
    let mut config = IngestConfig::from_env();
    config.refresh.seed = 42;
    config.fold_batches = 1;
    config.poll = Duration::from_millis(2);
    let ingestor = Ingestor::start(Arc::clone(&srv), loss.clone(), config);

    // Warm one cache entry so the first fold provably evicts it.
    let probe = &workload[0].predicate;
    assert!(!srv.query(probe).unwrap().cached);
    assert!(srv.query(probe).unwrap().cached, "second identical query hits the cache");

    // A concurrent reader that must keep serving across every swap.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let srv = Arc::clone(&srv);
        let stop = Arc::clone(&stop);
        // Skip any predicate equal to the probe (sessions revisit cells,
        // so duplicates happen): the cache-invalidation assertions below
        // need the main thread to be the probe's only client, otherwise
        // the reader can legitimately re-cache it right after a swap.
        let probe_repr = format!("{probe:?}");
        let queries: Vec<_> = workload
            .iter()
            .map(|q| q.predicate.clone())
            .filter(|p| format!("{p:?}") != probe_repr)
            .collect();
        assert!(!queries.is_empty());
        std::thread::spawn(move || {
            let mut served = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for p in &queries {
                    srv.query(p).expect("readers never observe a torn generation");
                    served += 1;
                }
            }
            served
        })
    };

    let epoch0 = srv.epoch();
    for round in 0..ROUNDS {
        let feed = taxi(BATCH_ROWS, 60 + round as u64);
        let rows: Vec<_> = (0..feed.len()).map(|i| feed.row(i)).collect();
        let seq = ingestor.append(rows).unwrap();
        ingestor.wait_folded(seq).unwrap();

        // Every acked row is readable at the barrier, in one generation.
        let generation = srv.cube();
        let now = generation.table();
        assert_eq!(now.len(), BASE_ROWS + BATCH_ROWS * (round + 1), "round {round}");
        assert_eq!(srv.epoch(), epoch0 + round as u64 + 1, "one epoch bump per fold");

        // The swap invalidated the answer cache exactly once: the first
        // re-probe recomputes, the second hits again.
        assert!(!srv.query(probe).unwrap().cached, "round {round}: stale answer served");
        assert!(srv.query(probe).unwrap().cached, "round {round}: cache usable again");

        // The θ guarantee holds on the streamed generation.
        for q in &workload {
            let answer = srv.query(&q.predicate).unwrap();
            let raw = q.predicate.filter(now).unwrap();
            let l = loss.loss(now, &raw, &answer.rows);
            assert!(l <= THETA + 1e-9, "round {round} [{}]: loss {l}", q.description);
        }
    }

    stop.store(true, Ordering::Relaxed);
    let served = reader.join().unwrap();
    assert!(served > 0, "the reader made progress while folds were running");

    let stats = ingestor.shutdown().unwrap();
    assert_eq!(stats.folds, ROUNDS as u64);
    assert_eq!(stats.folded_batches, ROUNDS as u64);
    assert_eq!(stats.appended_rows, (ROUNDS * BATCH_ROWS) as u64);
    assert_eq!(stats.folded_rows, (ROUNDS * BATCH_ROWS) as u64);
    assert_eq!(stats.last_folded_seq, ROUNDS as u64);
    assert_eq!(stats.pending_batches, 0);
    assert!(stats.fold_p99_ns >= stats.fold_p50_ns);
    assert!(stats.freshness_p99_ns >= stats.freshness_p50_ns);
    assert!(stats.freshness_p50_ns > 0);

    // The pipeline's metrics are homed in the server's registry, so they
    // surface in `\metrics` and the Prometheus exposition with everything
    // else.
    let snap = registry.snapshot();
    assert_eq!(snap.counter(INGEST_FOLDS), ROUNDS as u64);
    assert_eq!(snap.counter(INGEST_ROWS), (ROUNDS * BATCH_ROWS) as u64);
    let prom = snap.to_prometheus();
    assert!(prom.contains("tabula_ingest_fold_ns"), "fold histogram exported");
    assert!(prom.contains("tabula_ingest_freshness_lag_ns_window"), "lag window exported");
}
