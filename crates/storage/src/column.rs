//! Typed columnar storage.

use crate::dictionary::Dictionary;
use crate::encoding::EncodingMode;
use crate::shared::ColumnBuf;
use crate::types::{ColumnType, Point, Value};
use serde::{Deserialize, Serialize};

/// A single column of a table, stored contiguously by type.
///
/// Each variant's data sits behind a [`ColumnBuf`]: owned and growable
/// on the build/ingest path, or a shared zero-copy view into a snapshot
/// image on the restore path. Reads are identical either way; mutation
/// of a shared column promotes it to an owned copy first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Column {
    /// 64-bit integers.
    Int64(ColumnBuf<i64>),
    /// 64-bit floats.
    Float64(ColumnBuf<f64>),
    /// Dictionary-encoded strings.
    Str {
        /// Per-row dictionary codes.
        codes: ColumnBuf<u32>,
        /// The shared dictionary for this column.
        dict: Dictionary,
    },
    /// 2-D points.
    Point(ColumnBuf<Point>),
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int64 => Column::Int64(Vec::new().into()),
            ColumnType::Float64 => Column::Float64(Vec::new().into()),
            ColumnType::Str => Column::Str { codes: Vec::new().into(), dict: Dictionary::new() },
            ColumnType::Point => Column::Point(Vec::new().into()),
        }
    }

    /// An empty column of the given type with row capacity pre-reserved.
    pub fn with_capacity(ty: ColumnType, capacity: usize) -> Self {
        match ty {
            ColumnType::Int64 => Column::Int64(Vec::with_capacity(capacity).into()),
            ColumnType::Float64 => Column::Float64(Vec::with_capacity(capacity).into()),
            ColumnType::Str => {
                Column::Str { codes: Vec::with_capacity(capacity).into(), dict: Dictionary::new() }
            }
            ColumnType::Point => Column::Point(Vec::with_capacity(capacity).into()),
        }
    }

    /// This column's type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Column::Int64(_) => ColumnType::Int64,
            Column::Float64(_) => ColumnType::Float64,
            Column::Str { .. } => ColumnType::Str,
            Column::Point(_) => ColumnType::Point,
        }
    }

    /// Number of rows. Never decodes an encoded backing.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.row_count(),
            Column::Float64(v) => v.row_count(),
            Column::Str { codes, .. } => codes.row_count(),
            Column::Point(v) => v.row_count(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row` as a dynamically-typed [`Value`].
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int64(v) => Value::Int64(v[row]),
            Column::Float64(v) => Value::Float64(v[row]),
            Column::Str { codes, dict } => Value::Str(dict.decode(codes[row]).to_owned()),
            Column::Point(v) => Value::Point(v[row]),
        }
    }

    /// Append a value. Returns `false` (leaving the column unchanged) on a
    /// type mismatch; the caller converts that into a schema-aware error.
    pub(crate) fn push(&mut self, value: &Value) -> bool {
        match (self, value) {
            (Column::Int64(v), Value::Int64(x)) => {
                v.to_mut().push(*x);
                true
            }
            (Column::Float64(v), Value::Float64(x)) => {
                v.to_mut().push(*x);
                true
            }
            (Column::Float64(v), Value::Int64(x)) => {
                // Integers widen into float columns losslessly enough for
                // this engine's measure columns.
                v.to_mut().push(*x as f64);
                true
            }
            (Column::Str { codes, dict }, Value::Str(s)) => {
                codes.to_mut().push(dict.encode(s));
                true
            }
            (Column::Point(v), Value::Point(p)) => {
                v.to_mut().push(*p);
                true
            }
            _ => false,
        }
    }

    /// Materialize a new column containing only `rows` (in the given order).
    ///
    /// The output vectors are pre-sized to exactly `rows.len()` before the
    /// gather loop — this sits on the query-serving hot path (every answer
    /// materialization gathers every column), where incremental growth
    /// would re-allocate log₂(n) times per column.
    pub fn take(&self, rows: &[u32]) -> Column {
        #[inline]
        fn gather<T: Copy>(src: &[T], rows: &[u32]) -> Vec<T> {
            let mut out = Vec::with_capacity(rows.len());
            out.extend(rows.iter().map(|&r| src[r as usize]));
            out
        }
        match self {
            Column::Int64(v) => Column::Int64(gather(v, rows).into()),
            Column::Float64(v) => Column::Float64(gather(v, rows).into()),
            Column::Str { codes, dict } => {
                Column::Str { codes: gather(codes, rows).into(), dict: dict.clone() }
            }
            Column::Point(v) => Column::Point(gather(v, rows).into()),
        }
    }

    /// [`take`](Self::take) into an existing column of the same type,
    /// reusing its buffer capacity. Incremental refresh re-materializes
    /// local samples every round; routing those gathers through a kept
    /// scratch column makes steady-state refresh allocation-free once the
    /// buffers have grown to working-set size.
    ///
    /// For string columns the dictionary is cloned from `self` only when
    /// `out`'s dictionary differs (cheap `Arc`-free equality proxy: same
    /// length means same dictionary here, since both sides derive from the
    /// same immutable source column).
    pub fn take_into(&self, rows: &[u32], out: &mut Column) -> bool {
        #[inline]
        fn gather_into<T: Copy>(src: &[T], rows: &[u32], out: &mut Vec<T>) {
            out.clear();
            out.extend(rows.iter().map(|&r| src[r as usize]));
        }
        match (self, out) {
            (Column::Int64(v), Column::Int64(o)) => gather_into(v, rows, o.to_mut()),
            (Column::Float64(v), Column::Float64(o)) => gather_into(v, rows, o.to_mut()),
            (Column::Str { codes, dict }, Column::Str { codes: ocodes, dict: odict }) => {
                gather_into(codes, rows, ocodes.to_mut());
                if odict.len() != dict.len() {
                    *odict = dict.clone();
                }
            }
            (Column::Point(v), Column::Point(o)) => gather_into(v, rows, o.to_mut()),
            _ => return false,
        }
        true
    }

    /// Capacity (in rows) of the column's backing buffer. Shared
    /// (snapshot-backed) columns are not growable and report their
    /// length.
    pub fn capacity(&self) -> usize {
        match self {
            Column::Int64(v) => v.capacity(),
            Column::Float64(v) => v.capacity(),
            Column::Str { codes, .. } => codes.capacity(),
            Column::Point(v) => v.capacity(),
        }
    }

    /// Borrow the float data, if this is a float column.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match self {
            Column::Float64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the integer data, if this is an integer column.
    pub fn as_i64_slice(&self) -> Option<&[i64]> {
        match self {
            Column::Int64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the point data, if this is a point column.
    pub fn as_point_slice(&self) -> Option<&[Point]> {
        match self {
            Column::Point(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the dictionary codes and dictionary, if this is a string column.
    pub fn as_str_codes(&self) -> Option<(&[u32], &Dictionary)> {
        match self {
            Column::Str { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Borrow the integer backing buffer (runs/encoded form included),
    /// if this is an integer column.
    pub fn as_i64_buf(&self) -> Option<&ColumnBuf<i64>> {
        match self {
            Column::Int64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the float backing buffer (runs/encoded form included), if
    /// this is a float column.
    pub fn as_f64_buf(&self) -> Option<&ColumnBuf<f64>> {
        match self {
            Column::Float64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the dictionary-code backing buffer and dictionary
    /// (runs/encoded form included), if this is a string column.
    pub fn as_code_buf(&self) -> Option<(&ColumnBuf<u32>, &Dictionary)> {
        match self {
            Column::Str { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Re-encode the column's payload for a freeze under `mode` (see
    /// [`crate::encoding`]): applied by `TableBuilder::finish`, a no-op
    /// for already-encoded payloads and for columns the per-column
    /// chooser leaves plain. `Point` columns never encode.
    pub fn encode_for_freeze(&mut self, mode: EncodingMode) {
        match self {
            Column::Int64(v) => v.encode_in_place(mode),
            Column::Float64(v) => v.encode_in_place(mode),
            Column::Str { codes, .. } => codes.encode_in_place(mode),
            Column::Point(_) => {}
        }
    }

    /// Physical payload bytes a sequential scan of this column touches
    /// (the encoded size when encoded, `rows × width` when plain;
    /// dictionary strings excluded).
    pub fn physical_bytes(&self) -> usize {
        match self {
            Column::Int64(v) => v.physical_bytes(),
            Column::Float64(v) => v.physical_bytes(),
            Column::Str { codes, .. } => codes.physical_bytes(),
            Column::Point(v) => v.physical_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_each_type() {
        let mut c = Column::empty(ColumnType::Int64);
        assert!(c.push(&Value::Int64(5)));
        assert!(!c.push(&Value::Str("x".into())));
        assert_eq!(c.value(0), Value::Int64(5));

        let mut c = Column::empty(ColumnType::Str);
        assert!(c.push(&Value::Str("cash".into())));
        assert!(c.push(&Value::Str("credit".into())));
        assert!(c.push(&Value::Str("cash".into())));
        let (codes, dict) = c.as_str_codes().unwrap();
        assert_eq!(codes, &[0, 1, 0]);
        assert_eq!(dict.len(), 2);

        let mut c = Column::empty(ColumnType::Point);
        assert!(c.push(&Value::Point(Point::new(1.0, 2.0))));
        assert_eq!(c.value(0), Value::Point(Point::new(1.0, 2.0)));
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut c = Column::empty(ColumnType::Float64);
        assert!(c.push(&Value::Int64(3)));
        assert_eq!(c.value(0), Value::Float64(3.0));
    }

    #[test]
    fn take_projects_rows_in_order() {
        let mut c = Column::empty(ColumnType::Float64);
        for i in 0..5 {
            c.push(&Value::Float64(i as f64));
        }
        let t = c.take(&[4, 0, 2]);
        assert_eq!(t.as_f64_slice().unwrap(), &[4.0, 0.0, 2.0]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn take_into_reuses_capacity_across_rounds() {
        let mut c = Column::empty(ColumnType::Int64);
        for i in 0..100 {
            c.push(&Value::Int64(i));
        }
        let mut out = Column::empty(ColumnType::Int64);
        c.take_into(&(0..80).collect::<Vec<u32>>(), &mut out);
        let cap = out.capacity();
        let ptr = out.as_i64_slice().unwrap().as_ptr();
        for round in 0..10 {
            let rows: Vec<u32> = (0..(40 + round)).collect();
            assert!(c.take_into(&rows, &mut out));
            assert_eq!(out.len(), rows.len());
            assert_eq!(out.capacity(), cap, "round {round} reallocated");
            assert_eq!(out.as_i64_slice().unwrap().as_ptr(), ptr);
        }
        // Type mismatch is rejected, not coerced.
        let mut wrong = Column::empty(ColumnType::Float64);
        assert!(!c.take_into(&[0], &mut wrong));
    }

    #[test]
    fn take_into_refreshes_stale_dictionary() {
        let mut c = Column::empty(ColumnType::Str);
        for s in ["a", "b", "c"] {
            c.push(&Value::Str(s.into()));
        }
        let mut out = Column::empty(ColumnType::Str);
        assert!(c.take_into(&[2, 0], &mut out));
        assert_eq!(out.value(0), Value::Str("c".into()));
        assert_eq!(out.value(1), Value::Str("a".into()));
    }

    #[test]
    fn take_preserves_dictionary() {
        let mut c = Column::empty(ColumnType::Str);
        for s in ["a", "b", "c", "b"] {
            c.push(&Value::Str(s.into()));
        }
        let t = c.take(&[3, 2]);
        assert_eq!(t.value(0), Value::Str("b".into()));
        assert_eq!(t.value(1), Value::Str("c".into()));
    }
}
