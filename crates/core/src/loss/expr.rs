//! User-declared scalar-expression losses — the engine behind the paper's
//! `CREATE AGGREGATE loss(Raw, Sam) RETURN decimal_value AS BEGIN
//! scalar_expression END` DDL.
//!
//! The body is a scalar expression over *algebraic* aggregate functions of
//! the raw data and the sample (`AVG`, `SUM`, `COUNT`, `MIN`, `MAX`,
//! `STDDEV`), e.g. the paper's Function 1:
//!
//! ```text
//! ABS((AVG(Raw) - AVG(Sam)) / AVG(Raw))
//! ```
//!
//! [`ExprLoss`] evaluates such expressions as a first-class
//! [`AccuracyLoss`]: the per-cell state is a single [`NumericState`]
//! (sum / count / sum-of-squares / min / max — enough for every supported
//! aggregate), which is mergeable, so expression losses take the same
//! one-scan dry-run path as the built-ins. The SQL front-end
//! (`tabula-sql`) parses the DDL body into an [`Expr`]; programmatic users
//! can build the AST directly.

use super::AccuracyLoss;
use crate::sampling::{run_incremental_greedy, IncrementalEval};
use serde::{Deserialize, Serialize};
use tabula_storage::agg::AggState;
use tabula_storage::{RowId, Table};

/// Which dataset an aggregate draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Side {
    /// The raw query answer.
    Raw,
    /// The candidate sample.
    Sam,
}

/// Supported aggregate functions (all distributive or algebraic, as the
/// paper requires; `MEDIAN` is deliberately absent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFn {
    /// Arithmetic mean.
    Avg,
    /// Sum.
    Sum,
    /// Row count.
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Population standard deviation.
    StdDev,
}

/// A scalar expression over aggregates of `Raw` and `Sam`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Numeric literal.
    Const(f64),
    /// `agg(side)` over the loss's target attribute.
    Agg(AggFn, Side),
    /// Negation.
    Neg(Box<Expr>),
    /// Absolute value.
    Abs(Box<Expr>),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division.
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience: the paper's Function 1,
    /// `ABS((AVG(Raw) − AVG(Sam)) / AVG(Raw))`.
    pub fn mean_relative_error() -> Expr {
        Expr::Abs(Box::new(Expr::Div(
            Box::new(Expr::Sub(
                Box::new(Expr::Agg(AggFn::Avg, Side::Raw)),
                Box::new(Expr::Agg(AggFn::Avg, Side::Sam)),
            )),
            Box::new(Expr::Agg(AggFn::Avg, Side::Raw)),
        )))
    }

    /// Evaluate against the two aggregate states. `None` propagates from
    /// any undefined sub-expression (aggregate of an empty set, division
    /// by zero, non-finite intermediate).
    pub fn eval(&self, raw: &NumericState, sam: &NumericState) -> Option<f64> {
        let v = match self {
            Expr::Const(c) => *c,
            Expr::Agg(f, side) => {
                let s = match side {
                    Side::Raw => raw,
                    Side::Sam => sam,
                };
                s.agg(*f)?
            }
            Expr::Neg(e) => -e.eval(raw, sam)?,
            Expr::Abs(e) => e.eval(raw, sam)?.abs(),
            Expr::Add(a, b) => a.eval(raw, sam)? + b.eval(raw, sam)?,
            Expr::Sub(a, b) => a.eval(raw, sam)? - b.eval(raw, sam)?,
            Expr::Mul(a, b) => a.eval(raw, sam)? * b.eval(raw, sam)?,
            Expr::Div(a, b) => {
                let d = b.eval(raw, sam)?;
                if d == 0.0 {
                    return None;
                }
                a.eval(raw, sam)? / d
            }
        };
        v.is_finite().then_some(v)
    }
}

/// Mergeable numeric aggregate state covering every [`AggFn`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NumericState {
    /// Σv.
    pub sum: f64,
    /// Σv².
    pub sum_sq: f64,
    /// Row count.
    pub count: u64,
    /// Minimum (`+∞` when empty).
    pub min: f64,
    /// Maximum (`−∞` when empty).
    pub max: f64,
}

impl Default for NumericState {
    fn default() -> Self {
        NumericState { sum: 0.0, sum_sq: 0.0, count: 0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl NumericState {
    /// Account one value.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.sum += v;
        self.sum_sq += v * v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Evaluate one aggregate; `None` when undefined on an empty set.
    pub fn agg(&self, f: AggFn) -> Option<f64> {
        match f {
            AggFn::Count => Some(self.count as f64),
            AggFn::Sum => Some(self.sum),
            AggFn::Avg => (self.count > 0).then(|| self.sum / self.count as f64),
            AggFn::Min => (self.count > 0).then_some(self.min),
            AggFn::Max => (self.count > 0).then_some(self.max),
            AggFn::StdDev => (self.count > 0).then(|| {
                let n = self.count as f64;
                let mean = self.sum / n;
                (self.sum_sq / n - mean * mean).max(0.0).sqrt()
            }),
        }
    }
}

impl AggState for NumericState {
    fn merge(&mut self, other: &Self) {
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A loss function defined by a scalar expression over aggregates of one
/// numeric target attribute.
#[derive(Debug, Clone)]
pub struct ExprLoss {
    attr: usize,
    expr: Expr,
    name: &'static str,
}

impl ExprLoss {
    /// Loss evaluating `expr` over the numeric column at index `attr`.
    pub fn new(attr: usize, expr: Expr) -> Self {
        ExprLoss { attr, expr, name: "user_defined_expr" }
    }

    /// The expression body.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    #[inline]
    fn value(&self, table: &Table, row: RowId) -> f64 {
        table
            .column(self.attr)
            .as_f64_slice()
            .map(|s| s[row as usize])
            .or_else(|| table.column(self.attr).as_i64_slice().map(|s| s[row as usize] as f64))
            .expect("ExprLoss target attribute must be numeric")
    }

    fn loss_of_states(&self, raw: &NumericState, sam: &NumericState) -> f64 {
        if raw.count == 0 {
            return 0.0;
        }
        if sam.count == 0 {
            return f64::INFINITY;
        }
        // Undefined expressions (e.g. division by a zero aggregate) are
        // treated as unbounded loss so the sampler keeps refining.
        self.expr.eval(raw, sam).map_or(f64::INFINITY, f64::abs)
    }
}

impl AccuracyLoss for ExprLoss {
    type State = NumericState;
    type SampleCtx = NumericState;

    fn name(&self) -> &'static str {
        self.name
    }

    fn state_depends_on_sample(&self) -> bool {
        false
    }

    fn prepare(&self, table: &Table, sample: &[RowId]) -> NumericState {
        let mut s = NumericState::default();
        for &r in sample {
            s.add(self.value(table, r));
        }
        s
    }

    fn fold(&self, _ctx: &NumericState, state: &mut NumericState, table: &Table, row: RowId) {
        state.add(self.value(table, row));
    }

    fn finish(&self, ctx: &NumericState, state: &NumericState) -> f64 {
        self.loss_of_states(state, ctx)
    }

    fn sample_greedy(&self, table: &Table, raw: &[RowId], theta: f64) -> Vec<RowId> {
        let values: Vec<f64> = raw.iter().map(|&r| self.value(table, r)).collect();
        let mut raw_state = NumericState::default();
        for &v in &values {
            raw_state.add(v);
        }
        let eval =
            ExprGreedy { loss: self.clone(), values, raw_state, sample: NumericState::default() };
        run_incremental_greedy(eval, raw, theta)
    }
}

struct ExprGreedy {
    loss: ExprLoss,
    values: Vec<f64>,
    raw_state: NumericState,
    sample: NumericState,
}

impl IncrementalEval for ExprGreedy {
    fn current(&self) -> f64 {
        self.loss.loss_of_states(&self.raw_state, &self.sample)
    }

    fn loss_if_added(&self, idx: usize) -> f64 {
        let mut s = self.sample;
        s.add(self.values[idx]);
        self.loss.loss_of_states(&self.raw_state, &s)
    }

    fn add(&mut self, idx: usize) {
        self.sample.add(self.values[idx]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::MeanLoss;
    use tabula_storage::{ColumnType, Field, Schema, TableBuilder};

    fn table(values: &[f64]) -> Table {
        let schema = Schema::new(vec![Field::new("v", ColumnType::Float64)]);
        let mut b = TableBuilder::new(schema);
        for &v in values {
            b.push_row(&[v.into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn numeric_state_aggs() {
        let mut s = NumericState::default();
        assert_eq!(s.agg(AggFn::Avg), None);
        assert_eq!(s.agg(AggFn::Count), Some(0.0));
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.add(v);
        }
        assert_eq!(s.agg(AggFn::Avg), Some(2.5));
        assert_eq!(s.agg(AggFn::Sum), Some(10.0));
        assert_eq!(s.agg(AggFn::Min), Some(1.0));
        assert_eq!(s.agg(AggFn::Max), Some(4.0));
        let std = s.agg(AggFn::StdDev).unwrap();
        assert!((std - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn numeric_state_merge_equals_bulk() {
        let mut a = NumericState::default();
        let mut b = NumericState::default();
        let mut bulk = NumericState::default();
        for v in [3.0, -1.0, 7.0] {
            a.add(v);
            bulk.add(v);
        }
        for v in [0.5, 12.0] {
            b.add(v);
            bulk.add(v);
        }
        a.merge(&b);
        assert_eq!(a, bulk);
    }

    #[test]
    fn mean_relative_error_expr_matches_builtin_mean_loss() {
        let t = table(&[2.0, 4.0, 6.0, 8.0, 11.0]);
        let expr_loss = ExprLoss::new(0, Expr::mean_relative_error());
        let mean_loss = MeanLoss::new(0);
        use crate::loss::AccuracyLoss as _;
        let all: Vec<RowId> = t.all_rows();
        for sample in [vec![0u32], vec![1, 2], vec![0, 4], vec![0, 1, 2, 3, 4]] {
            let a = expr_loss.loss(&t, &all, &sample);
            let b = mean_loss.loss(&t, &all, &sample);
            assert!((a - b).abs() < 1e-12, "sample {sample:?}: {a} vs {b}");
        }
    }

    #[test]
    fn division_by_zero_is_unbounded_loss() {
        let t = table(&[-1.0, 1.0]); // AVG(Raw) = 0
        let loss = ExprLoss::new(0, Expr::mean_relative_error());
        assert!(loss.loss(&t, &[0, 1], &[0]).is_infinite());
    }

    #[test]
    fn custom_minmax_spread_expr() {
        // loss = |MAX(Raw) − MAX(Sam)| + |MIN(Raw) − MIN(Sam)|.
        let expr = Expr::Add(
            Box::new(Expr::Abs(Box::new(Expr::Sub(
                Box::new(Expr::Agg(AggFn::Max, Side::Raw)),
                Box::new(Expr::Agg(AggFn::Max, Side::Sam)),
            )))),
            Box::new(Expr::Abs(Box::new(Expr::Sub(
                Box::new(Expr::Agg(AggFn::Min, Side::Raw)),
                Box::new(Expr::Agg(AggFn::Min, Side::Sam)),
            )))),
        );
        let t = table(&[1.0, 5.0, 9.0]);
        let loss = ExprLoss::new(0, expr);
        let all: Vec<RowId> = t.all_rows();
        // Sample {5}: |9−5| + |1−5| = 8.
        assert!((loss.loss(&t, &all, &[1]) - 8.0).abs() < 1e-12);
        // Greedy must pick both extremes to reach θ = 0.
        let sample = loss.sample_greedy(&t, &all, 1e-9);
        let vals = t.column(0).as_f64_slice().unwrap();
        let picked: Vec<f64> = sample.iter().map(|&r| vals[r as usize]).collect();
        assert!(picked.contains(&1.0) && picked.contains(&9.0));
    }

    #[test]
    fn greedy_respects_threshold() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let t = table(&values);
        let loss = ExprLoss::new(0, Expr::mean_relative_error());
        let all: Vec<RowId> = t.all_rows();
        let sample = loss.sample_greedy(&t, &all, 0.01);
        use crate::loss::AccuracyLoss as _;
        assert!(loss.loss(&t, &all, &sample) <= 0.01);
    }
}
