//! # tabula-store
//!
//! On-disk columnar snapshots of built sampling cubes, so a restart maps
//! a generation back in milliseconds instead of repaying the build (the
//! most expensive operation in the system — see `BENCH_fig08_init_time`).
//!
//! A snapshot is **one immutable file**:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header   magic "TABSNAP1" · version u32 · reserved u32       │ 16 B
//! ├──────────────────────────────────────────────────────────────┤
//! │ block 0  raw little-endian payload, 8-byte aligned & padded  │
//! │ block 1  …one block per column / dictionary / key region…    │
//! │ …                                                            │
//! ├──────────────────────────────────────────────────────────────┤
//! │ manifest JSON: version, epoch, block table (name, offset,    │
//! │          len, rows, crc64), format notes — itself checksummed│
//! ├──────────────────────────────────────────────────────────────┤
//! │ footer   manifest_offset u64 · manifest_len u64 ·            │ 48 B
//! │          manifest_crc64 u64 · file_crc64 u64 ·               │
//! │          reserved u64 · magic "TABSNAP1"                     │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Every block carries its own CRC-64, the manifest carries one, and a
//! whole-file CRC-64 covers header + blocks + manifest. [`Snapshot::open`]
//! verifies **all of them before returning**, so any truncation, bit flip
//! or stale version surfaces as a typed [`StoreError`] naming the damaged
//! region — never a wrong answer, never a panic.
//!
//! The reader is zero-copy: the file is read once into one 8-byte-aligned
//! buffer shared behind an `Arc`, and fixed-width regions are reinterpreted
//! in place (`&[u8] → &[u64]/&[i64]/&[f64]/&[u32]`) — no per-row
//! deserialization. The format is little-endian on disk; big-endian hosts
//! are rejected with [`StoreError::Unsupported`] rather than silently
//! misreading.

pub mod blocks;
pub mod checksum;
pub mod format;
pub mod reader;
pub mod writer;

pub use blocks::{
    decode_dict_strings, encode_column, encode_dict, encode_f64s, encode_i64s, encode_u32s,
    encode_u64s, rebuild_dict, ColumnBlocks, ColumnData,
};
pub use checksum::crc64;
pub use format::{BlockDesc, Manifest, FOOTER_LEN, FORMAT_VERSION, HEADER_LEN, MAGIC};
pub use reader::{BlockView, Snapshot};
pub use writer::SnapshotWriter;

/// Histogram: nanoseconds spent writing snapshots.
pub const STORE_WRITE_NS: &str = "store.write_ns";
/// Histogram: nanoseconds spent opening + verifying snapshots.
pub const STORE_LOAD_NS: &str = "store.load_ns";
/// Counter: snapshot bytes written + read.
pub const STORE_BYTES: &str = "store.bytes";

/// Everything that can go wrong writing or (far more interestingly)
/// loading a snapshot. Load-time corruption is always reported through
/// one of these variants — loading never panics on hostile bytes.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start (or end) with the snapshot magic — it is
    /// not a snapshot, or its first/last bytes were damaged.
    BadMagic {
        /// Which copy of the magic failed: `"magic"` (header) or
        /// `"footer"`.
        region: &'static str,
    },
    /// The snapshot was written by an incompatible format version.
    BadVersion {
        /// Version found in the file header.
        found: u32,
        /// Version this reader supports.
        supported: u32,
    },
    /// A region extends past the end of the file — the file was truncated
    /// or an offset field was corrupted.
    Truncated {
        /// The region that does not fit (`"header"`, `"footer"`,
        /// `"manifest"`, or `"block:<name>"`).
        region: String,
        /// Bytes the region claims to need.
        need: u64,
        /// Bytes actually available.
        have: u64,
    },
    /// A stored CRC-64 does not match the bytes on disk.
    ChecksumMismatch {
        /// The damaged region (`"file"`, `"manifest"`, or
        /// `"block:<name>"`).
        region: String,
        /// Checksum recorded at write time.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// The manifest passed its checksum but does not parse / validate —
    /// a writer bug or a collision, never silently ignored.
    CorruptManifest(String),
    /// A block named by the loader is absent from the manifest.
    MissingBlock(String),
    /// A block's payload is malformed for its expected type (wrong length
    /// multiple, misaligned offset, invalid UTF-8 in a dictionary, …).
    BadBlock {
        /// `"block:<name>"`.
        region: String,
        /// What exactly is wrong.
        reason: String,
    },
    /// The snapshot is internally consistent but cannot be used here
    /// (e.g. a big-endian host, or cube content newer than this build).
    Unsupported(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            StoreError::BadMagic { region } => {
                write!(f, "snapshot {region} bytes are not the TABSNAP1 magic")
            }
            StoreError::BadVersion { found, supported } => {
                write!(f, "snapshot format version {found} (this build supports {supported})")
            }
            StoreError::Truncated { region, need, have } => {
                write!(f, "snapshot truncated at {region}: need {need} bytes, have {have}")
            }
            StoreError::ChecksumMismatch { region, expected, actual } => write!(
                f,
                "snapshot checksum mismatch in {region}: stored {expected:#018x}, \
                 computed {actual:#018x}"
            ),
            StoreError::CorruptManifest(msg) => write!(f, "snapshot manifest corrupt: {msg}"),
            StoreError::MissingBlock(name) => {
                write!(f, "snapshot is missing required block {name:?}")
            }
            StoreError::BadBlock { region, reason } => {
                write!(f, "snapshot {region} is malformed: {reason}")
            }
            StoreError::Unsupported(msg) => write!(f, "snapshot unsupported: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StoreError>;
